"""Tests for repro.net.network: transport, clock, failure injection."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdata import A, RRType
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import zone_from_records
from repro.net.network import NetworkError, SimulatedInternet
from repro.net.traffic import Protocol


@pytest.fixture
def network():
    return SimulatedInternet()


@pytest.fixture
def network_with_server(network):
    server = AuthoritativeServer("ns1.test.net")
    zone = zone_from_records("test.net", [("test.net", "A", "192.0.2.1")])
    server.load_zone(zone)
    network.register_dns_host("10.0.0.1", server)
    return network, server


class TestClock:
    def test_starts_at_zero(self, network):
        assert network.now == 0.0

    def test_tick_advances(self, network):
        network.tick(5.0)
        assert network.now == 5.0

    def test_negative_tick_rejected(self, network):
        with pytest.raises(ValueError):
            network.tick(-1)

    def test_queries_charge_latency(self, network_with_server):
        network, _ = network_with_server
        before = network.now
        network.query_dns(
            "10.9.9.9", "10.0.0.1", Message.make_query("test.net", RRType.A)
        )
        assert network.now > before


class TestDnsTransport:
    def test_query_response(self, network_with_server):
        network, _ = network_with_server
        response = network.query_dns(
            "10.9.9.9", "10.0.0.1", Message.make_query("test.net", RRType.A)
        )
        assert response.answers[0].rdata == A("192.0.2.1")

    def test_unknown_host_raises(self, network):
        with pytest.raises(NetworkError):
            network.query_dns(
                "10.9.9.9",
                "10.255.255.1",
                Message.make_query("x.net", RRType.A),
            )

    def test_offline_host_raises(self, network_with_server):
        network, _ = network_with_server
        network.set_online("10.0.0.1", False)
        with pytest.raises(NetworkError):
            network.query_dns(
                "10.9.9.9",
                "10.0.0.1",
                Message.make_query("test.net", RRType.A),
            )

    def test_host_can_come_back(self, network_with_server):
        network, _ = network_with_server
        network.set_online("10.0.0.1", False)
        network.set_online("10.0.0.1", True)
        response = network.query_dns(
            "10.9.9.9", "10.0.0.1", Message.make_query("test.net", RRType.A)
        )
        assert response.header.rcode == Rcode.NOERROR

    def test_set_online_unknown_host(self, network):
        with pytest.raises(NetworkError):
            network.set_online("1.2.3.4", True)

    def test_stats_counted(self, network_with_server):
        network, _ = network_with_server
        network.query_dns(
            "10.9.9.9", "10.0.0.1", Message.make_query("test.net", RRType.A)
        )
        try:
            network.query_dns(
                "10.9.9.9", "10.0.0.2", Message.make_query("x.net", RRType.A)
            )
        except NetworkError:
            pass
        assert network.stats["dns_queries"] == 2
        assert network.stats["dns_timeouts"] == 1

    def test_flows_captured_with_metadata(self, network_with_server):
        network, _ = network_with_server
        network.query_dns(
            "10.9.9.9", "10.0.0.1", Message.make_query("test.net", RRType.A)
        )
        flows = network.capture.dns_lookups()
        assert len(flows) == 1
        assert flows[0].metadata["qname"] == "test.net"
        assert flows[0].metadata["rcode"] == "NOERROR"
        assert flows[0].metadata["answers"] == ["192.0.2.1"]

    def test_failed_flow_marked_unsuccessful(self, network):
        network.register_stub("10.0.0.9")
        with pytest.raises(NetworkError):
            network.query_dns(
                "10.9.9.9",
                "10.0.0.9",
                Message.make_query("x.net", RRType.A),
            )
        assert not network.capture.flows[-1].success

    def test_registry_introspection(self, network_with_server):
        network, server = network_with_server
        assert network.knows("10.0.0.1")
        assert network.is_online("10.0.0.1")
        assert not network.knows("10.0.0.99")
        assert network.dns_hosts() == {"10.0.0.1": server}


class _Echo:
    def handle_tcp_connect(self, src_ip, dst_port, payload, network):
        return b"echo:" + payload


class TestTcpTransport:
    def test_connect_success(self, network):
        network.register_tcp_host("10.1.1.1", _Echo())
        result = network.connect_tcp("10.9.9.9", "10.1.1.1", 80, b"hello")
        assert result == b"echo:hello"

    def test_connect_to_nothing_returns_none(self, network):
        assert network.connect_tcp("10.9.9.9", "10.8.8.8", 80, b"x") is None
        assert network.stats["tcp_failures"] == 1

    def test_failed_connect_still_captured(self, network):
        network.connect_tcp("10.9.9.9", "10.8.8.8", 80, b"x")
        flow = network.capture.flows[-1]
        assert flow.dst == "10.8.8.8"
        assert not flow.success

    def test_payload_excerpt_in_metadata(self, network):
        network.register_tcp_host("10.1.1.1", _Echo())
        network.connect_tcp("10.9.9.9", "10.1.1.1", 80, b"A" * 500)
        flow = network.capture.flows[-1]
        assert flow.metadata["payload"] == b"A" * 256
        assert flow.payload_size == 500

    def test_protocol_tagging(self, network):
        network.register_tcp_host("10.1.1.1", _Echo())
        network.connect_tcp(
            "10.9.9.9", "10.1.1.1", 25, b"EHLO", protocol=Protocol.SMTP
        )
        assert network.capture.flows[-1].protocol is Protocol.SMTP

    def test_custom_metadata_preserved(self, network):
        network.register_tcp_host("10.1.1.1", _Echo())
        network.connect_tcp(
            "10.9.9.9", "10.1.1.1", 80, b"x", metadata={"k": "v"}
        )
        assert network.capture.flows[-1].metadata["k"] == "v"


def _fault_query():
    return Message.make_query(
        "test.net", RRType.A, recursion_desired=False
    )


class TestFaultProfileValidation:
    def test_flap_down_without_up_rejected(self):
        from repro.net.network import FaultProfile

        with pytest.raises(ValueError, match="dead, not flapping"):
            FaultProfile(flap_up=0.0, flap_down=30.0)

    def test_negative_window_rejected(self):
        from repro.net.network import FaultProfile

        with pytest.raises(ValueError):
            FaultProfile(start=-1.0)
        with pytest.raises(ValueError):
            FaultProfile(loss_rate=0.5, duration=-1.0)

    def test_window_activity(self):
        from repro.net.network import FaultProfile

        profile = FaultProfile(loss_rate=1.0, start=100.0, duration=50.0)
        assert not profile.active_at(99.0)
        assert profile.active_at(100.0)
        assert profile.active_at(149.0)
        assert not profile.active_at(150.0)
        open_ended = FaultProfile(loss_rate=1.0, start=100.0)
        assert open_ended.active_at(1e9)


class TestFaultWindows:
    def test_window_only_bites_inside_its_span(self, network_with_server):
        from repro.net.network import FaultProfile, NetworkError

        network, _ = network_with_server
        network.add_fault_window(
            "10.0.0.1",
            FaultProfile(loss_rate=1.0, start=10.0, duration=20.0),
        )
        # before the window: clean
        assert network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
        network.tick(10.0)
        with pytest.raises(NetworkError):
            network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
        network.tick(25.0)
        # after the window: clean again
        assert network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())

    def test_windows_stack_on_one_address(self, network_with_server):
        from repro.net.network import FaultProfile, NetworkError

        network, _ = network_with_server
        network.add_fault_window(
            "10.0.0.1", FaultProfile(loss_rate=1.0, duration=5.0)
        )
        network.add_fault_window(
            "10.0.0.1",
            FaultProfile(loss_rate=1.0, start=5.0, duration=5.0),
        )
        with pytest.raises(NetworkError):
            network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
        network.tick(6.0)
        with pytest.raises(NetworkError):
            network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
        network.tick(6.0)
        assert network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())

    def test_seed_faults_is_deterministic(self, network_with_server):
        from repro.net.network import FaultProfile, NetworkError

        def drops(seed):
            net, _ = (
                lambda: (SimulatedInternet(), None)
            )()
            server = AuthoritativeServer("ns1.test.net")
            server.load_zone(
                zone_from_records(
                    "test.net", [("test.net", "A", "192.0.2.1")]
                )
            )
            net.register_dns_host("10.0.0.1", server)
            net.add_fault_window(
                "10.0.0.1", FaultProfile(loss_rate=0.5)
            )
            net.seed_faults(seed)
            outcomes = []
            for _ in range(20):
                try:
                    net.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
                    outcomes.append(True)
                except NetworkError:
                    outcomes.append(False)
            return outcomes

        assert drops(3) == drops(3)
        assert drops(3) != drops(4)

    def test_clear_faults_drops_windows(self, network_with_server):
        from repro.net.network import FaultProfile

        network, _ = network_with_server
        network.add_fault_window(
            "10.0.0.1", FaultProfile(loss_rate=1.0)
        )
        network.clear_faults()
        assert network.query_dns("10.9.9.9", "10.0.0.1", _fault_query())
