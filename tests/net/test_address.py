"""Tests for repro.net.address."""

import pytest
from hypothesis import given, strategies as st

from repro.net.address import (
    AddressError,
    AddressPool,
    Prefix,
    PrefixPlanner,
    in_prefix,
    int_to_ip,
    ip_to_int,
    same_slash24,
    slash24,
)


class TestConversions:
    def test_ip_to_int(self):
        assert ip_to_int("0.0.0.1") == 1
        assert ip_to_int("1.0.0.0") == 1 << 24

    def test_int_to_ip(self):
        assert int_to_ip(0xC0000201) == "192.0.2.1"

    def test_invalid_ip(self):
        with pytest.raises(AddressError):
            ip_to_int("300.1.1.1")

    def test_int_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(-1)
        with pytest.raises(AddressError):
            int_to_ip(2**32)

    def test_slash24(self):
        assert slash24("192.0.2.77") == "192.0.2.0/24"

    def test_same_slash24(self):
        assert same_slash24("10.1.2.3", "10.1.2.200")
        assert not same_slash24("10.1.2.3", "10.1.3.3")

    def test_in_prefix(self):
        assert in_prefix("10.1.2.3", "10.1.0.0/16")
        assert not in_prefix("10.2.0.1", "10.1.0.0/16")
        with pytest.raises(AddressError):
            in_prefix("10.1.1.1", "not-a-prefix")


class TestPrefix:
    def test_sequential_allocation(self):
        prefix = Prefix("10.0.0.0/30")
        assert prefix.allocate() == "10.0.0.1"
        assert prefix.allocate() == "10.0.0.2"

    def test_exhaustion(self):
        prefix = Prefix("10.0.0.0/30")
        prefix.allocate()
        prefix.allocate()
        with pytest.raises(AddressError):
            prefix.allocate()  # .3 is broadcast, .0 network

    def test_contains(self):
        prefix = Prefix("192.0.2.0/24")
        assert prefix.contains("192.0.2.5")
        assert not prefix.contains("192.0.3.5")

    def test_invalid_cidr(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.1/33")

    def test_iteration(self):
        hosts = list(Prefix("10.0.0.0/30"))
        assert hosts == ["10.0.0.1", "10.0.0.2"]


class TestAddressPool:
    def test_first_fit_across_prefixes(self):
        pool = AddressPool.from_cidrs("p", ["10.0.0.0/30", "10.0.1.0/30"])
        allocated = [pool.allocate() for _ in range(3)]
        assert allocated == ["10.0.0.1", "10.0.0.2", "10.0.1.1"]

    def test_rotation(self):
        pool = AddressPool.from_cidrs("p", ["10.0.0.0/24", "10.0.1.0/24"])
        pool.rotate = True
        first = pool.allocate()
        second = pool.allocate()
        assert first.startswith("10.0.0.")
        assert second.startswith("10.0.1.")

    def test_allocate_many(self):
        pool = AddressPool.from_cidrs("p", "10.0.0.0/24")
        assert len(pool.allocate_many(5)) == 5
        assert len(pool.allocated) == 5

    def test_contains(self):
        pool = AddressPool.from_cidrs("p", "10.0.0.0/24")
        assert pool.contains("10.0.0.200")
        assert not pool.contains("10.9.0.1")

    def test_exhaustion(self):
        pool = AddressPool.from_cidrs("p", "10.0.0.0/31")
        pool.allocate()
        with pytest.raises(AddressError):
            pool.allocate()

    def test_empty_pool(self):
        pool = AddressPool(label="empty")
        with pytest.raises(AddressError):
            pool.allocate()


class TestPrefixPlanner:
    def test_disjoint_blocks(self):
        planner = PrefixPlanner()
        first = planner.next_slash16()
        second = planner.next_slash16()
        assert first != second
        pool_a = AddressPool.from_cidrs("a", first)
        assert not pool_a.contains(
            AddressPool.from_cidrs("b", second).allocate()
        )

    def test_block_rollover_to_next_octet(self):
        planner = PrefixPlanner()
        for _ in range(256):
            planner.next_slash16()
        assert planner.next_slash16() == "11.0.0.0/16"

    def test_pool_helper(self):
        planner = PrefixPlanner()
        pool = planner.pool("x", blocks=2)
        assert len(pool.prefixes) == 2

    def test_invalid_base_octet(self):
        with pytest.raises(AddressError):
            PrefixPlanner(base_octet=0)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_int_ip_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value
