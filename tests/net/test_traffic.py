"""Tests for repro.net.traffic."""

from repro.net.traffic import FlowRecord, Protocol, TrafficCapture


def _flow(dst="10.0.0.1", protocol=Protocol.TCP, src="10.9.9.9", ts=1.0):
    return FlowRecord(
        timestamp=ts,
        src=src,
        dst=dst,
        protocol=protocol,
        dst_port=80,
    )


class TestFlowRecord:
    def test_describe_contains_endpoints(self):
        text = _flow().describe()
        assert "10.9.9.9" in text and "10.0.0.1" in text

    def test_describe_dns_includes_qname(self):
        flow = FlowRecord(
            timestamp=0.0,
            src="a",
            dst="b",
            protocol=Protocol.DNS,
            dst_port=53,
            metadata={"qname": "example.com"},
        )
        assert "example.com" in flow.describe()

    def test_default_success(self):
        assert _flow().success


class TestTrafficCapture:
    def test_record_and_len(self):
        capture = TrafficCapture()
        capture.record(_flow())
        assert len(capture) == 1

    def test_iteration_order(self):
        capture = TrafficCapture()
        first, second = _flow(ts=1.0), _flow(ts=2.0)
        capture.record(first)
        capture.record(second)
        assert list(capture) == [first, second]

    def test_filter_by_protocol(self):
        capture = TrafficCapture()
        capture.record(_flow(protocol=Protocol.TCP))
        capture.record(_flow(protocol=Protocol.SMTP))
        assert len(capture.filter(protocol=Protocol.SMTP)) == 1

    def test_filter_by_endpoints(self):
        capture = TrafficCapture()
        capture.record(_flow(dst="1.1.1.1"))
        capture.record(_flow(dst="2.2.2.2"))
        assert len(capture.filter(dst="1.1.1.1")) == 1
        assert len(capture.filter(src="10.9.9.9")) == 2

    def test_filter_by_predicate(self):
        capture = TrafficCapture()
        capture.record(_flow(ts=1.0))
        capture.record(_flow(ts=5.0))
        late = capture.filter(predicate=lambda flow: flow.timestamp > 2)
        assert len(late) == 1

    def test_destinations_deduped_in_order(self):
        capture = TrafficCapture()
        capture.record(_flow(dst="1.1.1.1"))
        capture.record(_flow(dst="2.2.2.2"))
        capture.record(_flow(dst="1.1.1.1"))
        assert capture.destinations() == ["1.1.1.1", "2.2.2.2"]

    def test_destinations_filtered_by_protocol(self):
        capture = TrafficCapture()
        capture.record(_flow(dst="1.1.1.1", protocol=Protocol.DNS))
        capture.record(_flow(dst="2.2.2.2", protocol=Protocol.TCP))
        assert capture.destinations(Protocol.DNS) == ["1.1.1.1"]

    def test_dns_lookups(self):
        capture = TrafficCapture()
        capture.record(_flow(protocol=Protocol.DNS))
        capture.record(_flow(protocol=Protocol.TCP))
        assert len(capture.dns_lookups()) == 1

    def test_extend_and_clear(self):
        capture = TrafficCapture()
        capture.extend([_flow(), _flow()])
        assert len(capture) == 2
        capture.clear()
        assert len(capture) == 0

    def test_flows_returns_copy(self):
        capture = TrafficCapture()
        capture.record(_flow())
        snapshot = capture.flows
        snapshot.append(_flow())
        assert len(capture) == 1
