"""Tests for UDP truncation and TCP fallback."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdata import RRType, TXT
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.net.network import MAX_UDP_PAYLOAD, SimulatedInternet


@pytest.fixture
def big_zone_network():
    """A zone whose TXT RRset cannot fit a 512-byte UDP response."""
    network = SimulatedInternet()
    zone = Zone("big.example")
    for index in range(6):
        zone.add(
            "big.example", TXT.from_value(f"{index:02d}-" + "x" * 200)
        )
    server = AuthoritativeServer("ns1.big.example")
    server.load_zone(zone)
    network.register_dns_host("10.0.0.1", server)
    return network


def _query():
    return Message.make_query(
        "big.example", RRType.TXT, recursion_desired=False
    )


class TestTruncation:
    def test_udp_response_truncated(self, big_zone_network):
        response = big_zone_network.query_dns(
            "10.9.9.9", "10.0.0.1", _query(), transport="udp"
        )
        assert response.header.truncated
        assert response.answers == []
        assert response.header.rcode == Rcode.NOERROR

    def test_tcp_carries_full_response(self, big_zone_network):
        response = big_zone_network.query_dns(
            "10.9.9.9", "10.0.0.1", _query(), transport="tcp"
        )
        assert not response.header.truncated
        assert len(response.answers) == 6

    def test_auto_retries_over_tcp(self, big_zone_network):
        response = big_zone_network.query_dns_auto(
            "10.9.9.9", "10.0.0.1", _query()
        )
        assert not response.header.truncated
        assert len(response.answers) == 6

    def test_truncation_counted(self, big_zone_network):
        big_zone_network.query_dns_auto("10.9.9.9", "10.0.0.1", _query())
        assert big_zone_network.stats["truncated_responses"] == 1
        # auto made two queries: the truncated UDP one and the TCP retry.
        assert big_zone_network.stats["dns_queries"] == 2

    def test_small_responses_unaffected(self, big_zone_network):
        query = Message.make_query(
            "big.example", RRType.SOA, recursion_desired=False
        )
        response = big_zone_network.query_dns(
            "10.9.9.9", "10.0.0.1", query, transport="udp"
        )
        assert not response.header.truncated

    def test_unknown_transport_rejected(self, big_zone_network):
        with pytest.raises(ValueError):
            big_zone_network.query_dns(
                "10.9.9.9", "10.0.0.1", _query(), transport="quic"
            )

    def test_threshold_is_rfc1035(self):
        assert MAX_UDP_PAYLOAD == 512


class TestPipelineWithBigRecords:
    def test_collector_retrieves_truncated_urs(self, big_zone_network):
        """Stage 1 must not lose URs behind UDP truncation."""
        from repro.core.collector import (
            DomainTarget,
            NameserverTarget,
            ResponseCollector,
        )
        from repro.dns.name import name

        collector = ResponseCollector(big_zone_network)
        result = collector.collect_urs(
            [NameserverTarget("10.0.0.1", "BigHost")],
            [DomainTarget(name("big.example"), 1)],
            {},
        )
        txt_urs = [
            record
            for record in result.undelegated
            if record.rrtype == RRType.TXT
        ]
        assert len(txt_urs) == 6
