"""Tests for repro.scenario.world: the assembled simulated internet."""

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.dns.resolver import RecursiveResolver
from repro.scenario import ScenarioConfig, build_world, small_config


class TestWorldAssembly:
    def test_headline_providers_present(self, small_world):
        for provider_name in (
            "Cloudflare",
            "Amazon",
            "ClouDNS",
            "Godaddy",
            "Tencent Cloud",
            "Alibaba Cloud",
            "Baidu Cloud",
            "Namecheap",
            "CSC",
        ):
            assert provider_name in small_world.providers

    def test_longtail_providers_counted(self, small_world):
        longtail = [
            key
            for key in small_world.providers
            if key.startswith("Provider-")
        ]
        assert len(longtail) == small_world.config.longtail_providers

    def test_nameserver_targets_cover_providers(self, small_world):
        providers = {
            target.provider for target in small_world.nameserver_targets
        }
        assert "Cloudflare" in providers
        assert "ClouDNS" in providers

    def test_domain_targets_include_case_studies(self, small_world):
        targets = {str(target.domain) for target in small_world.domain_targets}
        for domain in (
            "speedtest.net",
            "ibm.com",
            "api.gitlab.com",
            "raw.pastebin.com",
            "api.github.com",
        ):
            assert domain in targets

    def test_delegated_domains_resolve(self, small_world):
        resolver = RecursiveResolver(
            "10.123.0.1",
            small_world.network,
            small_world.root.root_addresses,
        )
        resolved = 0
        for domain, addresses in list(small_world.delegated_to.items())[:10]:
            result = resolver.lookup_a(domain)
            if result:
                resolved += 1
        assert resolved >= 8  # nearly all delegations work end to end

    def test_open_resolvers_registered(self, small_world):
        assert (
            len(small_world.open_resolver_ips)
            == small_world.config.open_resolvers
        )
        for address in small_world.open_resolver_ips:
            assert small_world.network.knows(address)

    def test_manipulated_resolver_fraction(self, small_world):
        manipulated = [
            resolver
            for resolver in small_world.open_resolvers
            if resolver.is_manipulated
        ]
        expected = round(
            small_world.config.open_resolvers
            * small_world.config.manipulated_resolver_fraction
        )
        assert len(manipulated) == expected

    def test_sandbox_ran_all_samples(self, small_world):
        assert len(small_world.sandbox_reports) == len(small_world.samples)
        assert len(small_world.samples) > 0

    def test_case_study_campaigns_present(self, small_world):
        assert set(small_world.case_studies) == {
            "Dark.IoT",
            "Specter",
            "SPF-masquerade",
        }

    def test_spf_campaign_spans_eleven_nameservers(self, small_world):
        spf = small_world.case_studies["SPF-masquerade"]
        assert len(spf.nameserver_ips()) == 11
        assert len(spf.c2_ips) == 3

    def test_attacker_identities_nonempty(self, small_world):
        assert small_world.attacker_identities
        domain, rrtype, rdata = next(iter(small_world.attacker_identities))
        assert small_world.is_attacker_record(domain, rrtype, rdata)

    def test_pdns_has_history(self, small_world):
        assert len(small_world.pdns) > 0

    def test_vendor_fleet_size(self, small_world):
        assert len(small_world.vendors) == small_world.config.vendor_count

    def test_provider_of_nameserver(self, small_world):
        target = small_world.nameserver_targets[0]
        assert (
            small_world.provider_of_nameserver(target.address)
            == target.provider
        )
        assert small_world.provider_of_nameserver("203.0.113.254") is None


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = small_config(seed=77)
        first = build_world(config)
        second = build_world(small_config(seed=77))
        assert first.tranco.domains() == second.tranco.domains()
        assert first.attacker_identities == second.attacker_identities
        assert [t.address for t in first.nameserver_targets] == [
            t.address for t in second.nameserver_targets
        ]

    def test_different_seed_differs(self):
        first = build_world(small_config(seed=77))
        second = build_world(small_config(seed=78))
        assert first.attacker_identities != second.attacker_identities


class TestConfigValidation:
    def test_target_exceeds_top_list(self):
        with pytest.raises(ValueError):
            ScenarioConfig(top_list_size=10, target_domains=20)

    def test_split_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ScenarioConfig(observation_split=(0.5, 0.5, 0.5))

    def test_behaviour_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ScenarioConfig(behaviour_mix=(1.0, 1.0, 0.0, 0.0, 0.0))


class TestPostDisclosure:
    def test_tencent_blocks_urs_after_disclosure(self):
        config = small_config(seed=3)
        config.post_disclosure = True
        world = build_world(config)
        tencent = world.providers["Tencent Cloud"]
        assert not tencent.policy.hosts_without_verification

    def test_cloudflare_expanded_blacklist_after_disclosure(self):
        config = small_config(seed=3)
        config.post_disclosure = True
        world = build_world(config)
        cloudflare = world.providers["Cloudflare"]
        assert cloudflare.policy.is_reserved("speedtest.net")
