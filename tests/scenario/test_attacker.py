"""Tests for repro.scenario.attacker."""

import random

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.hosting.policy import HostingPolicy
from repro.hosting.provider import HostingProvider
from repro.net.address import AddressPool, PrefixPlanner, same_slash24
from repro.net.network import SimulatedInternet
from repro.scenario.attacker import Attacker


@pytest.fixture
def env():
    network = SimulatedInternet()
    planner = PrefixPlanner()
    provider = HostingProvider(
        "PermissiveHost",
        HostingPolicy(allows_unregistered=True, allows_subdomains=True),
        network,
        planner.pool("host"),
        rng=random.Random(1),
    )
    strict = HostingProvider(
        "StrictHost",
        HostingPolicy(reserved=frozenset({"trusted.com"})),
        network,
        planner.pool("strict"),
        rng=random.Random(2),
    )
    attacker = Attacker(
        network, planner.pool("c2"), rng=random.Random(3)
    )
    return network, provider, strict, attacker


class TestInfrastructure:
    def test_stand_up_c2_registers_hosts(self, env):
        network, _, _, attacker = env
        addresses = attacker.stand_up_c2(3)
        assert len(addresses) == 3
        for address in addresses:
            assert network.knows(address)

    def test_c2_answers_connections(self, env):
        network, _, _, attacker = env
        (address,) = attacker.stand_up_c2(1)
        response = network.connect_tcp("10.9.9.9", address, 4444, b"HI")
        assert response is not None
        assert attacker.c2_servers[address].connections == 1

    def test_c2_smtp_banner(self, env):
        network, _, _, attacker = env
        (address,) = attacker.stand_up_c2(1)
        response = network.connect_tcp(
            "10.9.9.9", address, 25, b"EHLO victim"
        )
        assert response.startswith(b"250")

    def test_same_slash24_block(self, env):
        _, _, _, attacker = env
        addresses = attacker.stand_up_c2_same_slash24(3)
        assert len(addresses) == 3
        assert all(
            same_slash24(addresses[0], address) for address in addresses
        )


class TestPlanting:
    def test_plant_a_record_served(self, env):
        network, provider, _, attacker = env
        campaign = attacker.new_campaign("c1", ["PermissiveHost"])
        (c2,) = attacker.stand_up_c2(1)
        hosted = attacker.plant_a_record(
            campaign, provider, "trusted.com", c2
        )
        assert hosted is not None
        from repro.dns.message import Message

        response = network.query_dns(
            "10.9.9.9",
            hosted.nameserver_addresses()[0],
            Message.make_query("trusted.com", RRType.A),
        )
        assert response.answers[0].rdata.address == c2

    def test_plant_records_ground_truth(self, env):
        _, provider, _, attacker = env
        campaign = attacker.new_campaign("c1", ["PermissiveHost"])
        (c2,) = attacker.stand_up_c2(1)
        attacker.plant_a_record(campaign, provider, "trusted.com", c2)
        attacker.plant_txt_record(
            campaign,
            provider,
            "trusted.com",
            f"v=spf1 ip4:{c2} -all",
            embedded_ips=[c2],
        )
        identities = attacker.all_planted_identities()
        assert (name("trusted.com"), RRType.A, c2) in identities
        assert (
            name("trusted.com"),
            RRType.TXT,
            f"v=spf1 ip4:{c2} -all",
        ) in identities
        assert campaign.c2_ips == [c2]

    def test_refused_domain_returns_none(self, env):
        _, _, strict, attacker = env
        campaign = attacker.new_campaign("c1", ["StrictHost"])
        (c2,) = attacker.stand_up_c2(1)
        assert (
            attacker.plant_a_record(campaign, strict, "trusted.com", c2)
            is None
        )
        assert campaign.planted == []

    def test_zone_reused_for_same_domain(self, env):
        _, provider, _, attacker = env
        campaign = attacker.new_campaign("c1", ["PermissiveHost"])
        (c2,) = attacker.stand_up_c2(1)
        first = attacker.plant_a_record(campaign, provider, "t.com", c2)
        second = attacker.plant_txt_record(
            campaign, provider, "t.com", "cmd=blob"
        )
        assert first is second
        assert len(campaign.hosted_zones) == 1

    def test_account_reused_per_provider(self, env):
        _, provider, _, attacker = env
        first = attacker.account_at(provider)
        second = attacker.account_at(provider)
        assert first is second
        paid = attacker.account_at(provider, paid=True)
        assert paid is not first

    def test_campaign_nameserver_ips(self, env):
        _, provider, _, attacker = env
        campaign = attacker.new_campaign("c1", ["PermissiveHost"])
        (c2,) = attacker.stand_up_c2(1)
        attacker.plant_a_record(campaign, provider, "t.com", c2)
        assert campaign.nameserver_ips()
