"""Tests comparing URs with the related attacks of paper §2/§3."""

import random

import pytest

from repro.dns.resolver import RecursiveResolver
from repro.hosting import DnsRoot, make_amazon, make_godaddy
from repro.net import PrefixPlanner, SimulatedInternet
from repro.scenario.related import (
    attempt_dangling_takeover,
    create_dangling_delegation,
    resolves_to,
    shadow_domain,
)

ATTACKER_IP = "203.0.113.66"
LEGIT_IP = "198.51.100.10"


@pytest.fixture
def env():
    network = SimulatedInternet()
    root = DnsRoot(network)
    planner = PrefixPlanner()
    godaddy = make_godaddy(network, planner.pool("gd"))
    amazon = make_amazon(network, planner.pool("aws"))
    for provider in (godaddy, amazon):
        root.connect_provider(provider)
    resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)
    return network, root, godaddy, amazon, resolver


class TestDanglingTakeover:
    def test_global_fixed_provider_full_hijack(self, env):
        network, root, godaddy, _, resolver = env
        create_dangling_delegation(root, godaddy, "abandoned.com")
        result = attempt_dangling_takeover(
            root, godaddy, "abandoned.com", ATTACKER_IP
        )
        assert result.succeeded
        assert result.hijacks_normal_resolution
        # Unlike a UR, the hijack is visible in ordinary resolution.
        assert resolves_to(resolver, "abandoned.com", ATTACKER_IP)

    def test_random_pool_provider_may_miss(self, env):
        network, root, _, amazon, resolver = env
        create_dangling_delegation(root, amazon, "abandoned.org")
        result = attempt_dangling_takeover(
            root, amazon, "abandoned.org", ATTACKER_IP
        )
        assert result.succeeded
        # With 4-of-40 random allocation, landing on the delegated set is
        # unlikely in one shot; the flag reports whichever happened.
        delegated = set(root.delegated_addresses("abandoned.org"))
        serving = set(result.attacker_zone.nameserver_addresses())
        assert result.hijacks_normal_resolution == bool(
            delegated & serving
        )

    def test_requires_stale_state_urs_do_not(self, env):
        """The UR contrast: a healthy delegation cannot be taken over —
        but a UR for the same domain works regardless."""
        network, root, godaddy, amazon, resolver = env
        owner = godaddy.create_account()
        healthy = godaddy.host_zone(owner, "healthy.com", is_registered=True)
        godaddy.add_record(healthy, "healthy.com", "A", LEGIT_IP)
        root.register("healthy.com", "owner")
        root.delegate(
            "healthy.com", godaddy.nameserver_set_for_delegation(healthy)
        )
        # Takeover at the same provider fails (no duplicates).
        result = attempt_dangling_takeover(
            root, godaddy, "healthy.com", ATTACKER_IP
        )
        assert not result.succeeded
        # The UR at a *different* provider succeeds without any stale
        # state, and normal resolution is untouched.
        ur_zone = amazon.host_zone(
            amazon.create_account(), "healthy.com", is_registered=True
        )
        amazon.add_record(ur_zone, "healthy.com", "A", ATTACKER_IP)
        assert resolves_to(resolver, "healthy.com", LEGIT_IP)
        assert not resolves_to(resolver, "healthy.com", ATTACKER_IP)
        # ...yet the attacker's nameserver serves the UR on request.
        from repro.dns.message import Message
        from repro.dns.rdata import RRType

        response = network.query_dns(
            "10.9.9.9",
            ur_zone.nameserver_addresses()[0],
            Message.make_query("healthy.com", RRType.A),
        )
        assert response.answers[0].rdata.address == ATTACKER_IP


class TestDomainShadowing:
    def test_shadow_resolves_through_normal_recursion(self, env):
        network, root, godaddy, _, resolver = env
        owner = godaddy.create_account()
        hosted = godaddy.host_zone(owner, "victim.net", is_registered=True)
        godaddy.add_record(hosted, "victim.net", "A", LEGIT_IP)
        root.register("victim.net", "owner")
        root.delegate(
            "victim.net", godaddy.nameserver_set_for_delegation(hosted)
        )
        shadowed = shadow_domain(hosted, "cdn-x9k2", ATTACKER_IP)
        assert str(shadowed.shadow) == "cdn-x9k2.victim.net"
        # The shadow rides the legitimate delegation — visible to anyone
        # resolving it, unlike a UR.
        assert resolves_to(resolver, "cdn-x9k2.victim.net", ATTACKER_IP)
        # The apex is untouched.
        assert resolves_to(resolver, "victim.net", LEGIT_IP)
