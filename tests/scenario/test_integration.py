"""Cross-layer integration tests: squatters, retrieval conflicts, and
the HTTP-keyword exclusion in a full measurement."""

import pytest

from repro.core import URCategory, URHunter
from repro.dns.rdata import RRType
from repro.hosting import HostingError


class TestSquatterExclusion:
    def test_parked_urs_excluded_via_http_keyword(self, small_report):
        """Squatter/parking zones survive delegation checks but the HTTP
        keyword filter (Appendix B) labels them correct (= not abuse)."""
        http_excluded = [
            entry
            for entry in small_report.classified
            if entry.category is URCategory.CORRECT
            and "http-keyword" in entry.reasons
        ]
        assert http_excluded, "scenario produced no parked URs"

    def test_parked_urs_point_at_parking_prefix(
        self, small_world, small_report
    ):
        parked_ips = {
            entry.record.rdata_text
            for entry in small_report.classified
            if "http-keyword" in entry.reasons
            and entry.record.rrtype == RRType.A
        }
        for address in parked_ips:
            meta = small_world.ipinfo.lookup(address)
            assert meta.http.kind.value in ("parked", "redirect")


class TestPastDelegationExclusion:
    def test_stale_zones_excluded_via_pdns(self, small_report):
        """Past-delegation leftovers match six-year passive DNS history
        and are excluded as correct records."""
        pdns_excluded = [
            entry
            for entry in small_report.classified
            if entry.category is URCategory.CORRECT
            and "pdns-history" in entry.reasons
        ]
        assert pdns_excluded, "scenario produced no past delegations"


class TestMisconfiguredRecursives:
    def test_recursive_answers_excluded_as_correct(
        self, small_world, small_report
    ):
        """Misconfigured open-recursive nameservers return the real
        records; those URs land in correct, not suspicious."""
        from repro.dns.server import UnhostedPolicy

        recursive_ns = {
            entry.address
            for provider in small_world.providers.values()
            for entry in provider.pool
            if entry.server.unhosted_policy is UnhostedPolicy.RECURSIVE
        }
        if not recursive_ns:
            pytest.skip("seed produced no misconfigured recursives")
        from_recursives = [
            entry
            for entry in small_report.classified
            if entry.record.nameserver_ip in recursive_ns
        ]
        assert from_recursives
        for entry in from_recursives:
            assert entry.category in (
                URCategory.CORRECT,
                URCategory.PROTECTIVE,
            ), entry


class TestRetrievalConflict:
    """Appendix C: when an attacker squats first, what can the owner do?"""

    def test_owner_blocked_then_retrieves_on_supporting_provider(
        self, small_world
    ):
        tencent = small_world.providers["Tencent Cloud"]
        attacker_account = tencent.create_account()
        victim_domain = "retrieval-conflict-test.com"
        small_world.root.register(victim_domain, "the-owner")
        squatted = tencent.host_zone(
            attacker_account, victim_domain, is_registered=True
        )
        owner_account = tencent.create_account()
        # Tencent allows cross-user duplicates, so the owner *can* host —
        # but on providers that refuse duplicates they'd be locked out.
        owner_zone = tencent.host_zone(
            owner_account, victim_domain, is_registered=True
        )
        # The owner proves control by delegating to Tencent, then evicts
        # the squatter via the retrieval mechanism.
        small_world.root.delegate(
            victim_domain,
            tencent.nameserver_set_for_delegation(owner_zone),
        )
        evicted = tencent.retrieve_domain(owner_account, victim_domain)
        assert squatted in evicted
        remaining = tencent.hosted_zones(victim_domain)
        assert remaining == [owner_zone]

    def test_owner_locked_out_without_retrieval(self, small_world):
        godaddy = small_world.providers["Godaddy"]
        attacker_account = godaddy.create_account()
        victim_domain = "lockout-conflict-test.com"
        godaddy.host_zone(
            attacker_account, victim_domain, is_registered=True
        )
        owner_account = godaddy.create_account()
        # GoDaddy: no cross-user duplicates and no retrieval — the
        # legitimate owner simply cannot host (the Appendix C finding).
        with pytest.raises(HostingError):
            godaddy.host_zone(
                owner_account, victim_domain, is_registered=True
            )
        with pytest.raises(HostingError):
            godaddy.retrieve_domain(owner_account, victim_domain)


class TestManipulatedResolverPollution:
    def test_ad_server_lands_in_correct_db_without_breaking_fn(
        self, small_world, small_hunter, small_report
    ):
        """Manipulated open resolvers pollute the correct-record database
        (the ad server shows up in profiles) but the §4.2 validation
        stays clean — matching the paper's robustness argument."""
        from repro.scenario.world import AD_SERVER_IP

        assert small_report.false_negative_rate == 0.0
        hunter = URHunter.from_world(small_world)
        hunter.run(validate=False)
        assert hunter.correct_db is not None
        polluted = [
            domain
            for domain in hunter.correct_db.domains()
            if AD_SERVER_IP in hunter.correct_db.profile(domain).ips
        ]
        manipulated = [
            resolver
            for resolver in small_world.open_resolvers
            if resolver.is_manipulated
        ]
        if manipulated:
            assert polluted, "manipulated resolvers left no trace"
