"""Cross-process determinism: a seed must give identical results in a
fresh interpreter.

This guards against the bug class where in-process determinism tests
pass but results differ between runs — e.g. salted ``hash()`` on
strings, dict-order dependence on ids, or wall-clock leakage.
"""

import subprocess
import sys

import pytest

_SCRIPT = """
import json
from repro.scenario import small_config, build_world
from repro.core import URHunter

world = build_world(small_config(seed=19))
report = URHunter.from_world(world).run(validate=False)
fingerprint = {
    "counts": report.category_counts(),
    "keys": sorted(
        f"{entry.record.domain}|{entry.record.nameserver_ip}|"
        f"{entry.record.rrtype}|{entry.record.rdata_text}|"
        f"{entry.category.value}"
        for entry in report.classified
    )[:50],
    "malicious_ips": sorted(
        verdict.address
        for verdict in report.ip_verdicts.values()
        if verdict.is_malicious
    ),
}
print(json.dumps(fingerprint, sort_keys=True))
"""


def _run_fresh_interpreter() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


@pytest.mark.slow
def test_identical_results_across_processes():
    first = _run_fresh_interpreter()
    second = _run_fresh_interpreter()
    assert first == second
    assert first  # non-empty fingerprint
