"""Tests for repro.scenario.tranco."""

import random

from repro.dns.name import name
from repro.scenario.tranco import (
    DEFAULT_PINS,
    TrancoEntry,
    TrancoList,
    generate_tranco,
)


class TestGeneration:
    def test_size(self):
        assert len(generate_tranco(200)) == 200

    def test_ranks_are_contiguous(self):
        top = generate_tranco(50)
        assert [entry.rank for entry in top] == list(range(1, 51))

    def test_domains_unique(self):
        top = generate_tranco(500)
        domains = top.domains()
        assert len(domains) == len(set(domains))

    def test_deterministic_for_seed(self):
        first = generate_tranco(100, random.Random(5))
        second = generate_tranco(100, random.Random(5))
        assert first.domains() == second.domains()

    def test_different_seeds_differ(self):
        first = generate_tranco(100, random.Random(5))
        second = generate_tranco(100, random.Random(6))
        assert first.domains() != second.domains()


class TestPins:
    def test_case_study_domains_pinned_at_paper_ranks(self):
        top = generate_tranco(3000)
        assert top.rank_of("github.com") == 30
        assert top.rank_of("ibm.com") == 125
        assert top.rank_of("speedtest.net") == 415
        assert top.rank_of("gitlab.com") == 527
        assert top.rank_of("pastebin.com") == 2033

    def test_overflow_pins_folded_into_small_lists(self):
        top = generate_tranco(100)
        # pastebin (2033) and speedtest (415) must still exist somewhere.
        assert "pastebin.com" in top
        assert "speedtest.net" in top

    def test_custom_pins(self):
        top = generate_tranco(10, pins={"custom.org": 4})
        assert top.rank_of("custom.org") == 4
        assert "github.com" not in top


class TestListApi:
    def test_top(self):
        top = generate_tranco(100)
        assert len(top.top(10)) == 10
        assert top.top(10)[0].rank == 1

    def test_rank_of_missing(self):
        assert generate_tranco(10).rank_of("nope.example") is None

    def test_contains(self):
        top = generate_tranco(50)
        assert top.domains()[0] in top

    def test_entries_sorted_regardless_of_input(self):
        entries = [
            TrancoEntry(rank=3, domain=name("c.com")),
            TrancoEntry(rank=1, domain=name("a.com")),
        ]
        assert TrancoList(entries).entries[0].rank == 1
