"""Fuzz-style property tests: the wire decoder must never crash with
anything other than WireError, no matter the input."""

from hypothesis import given, settings, strategies as st

from repro.dns.message import Message
from repro.dns.rdata import RRType
from repro.dns.wire import WireError, decode_message, encode_message


@given(st.binary(max_size=200))
@settings(max_examples=300)
def test_decode_arbitrary_bytes_is_total(data):
    """decode_message(raw) either parses or raises WireError — nothing
    else (no IndexError, no UnicodeDecodeError, no infinite loop)."""
    try:
        decode_message(data)
    except WireError:
        pass


@given(st.binary(min_size=12, max_size=400))
@settings(max_examples=300)
def test_decode_with_valid_header_prefix(data):
    """Bytes that start with a plausible header still decode totally."""
    header = b"\x12\x34\x81\x80\x00\x01\x00\x01\x00\x00\x00\x00"
    try:
        decode_message(header + data)
    except WireError:
        pass


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10)
_qname = st.lists(_label, min_size=1, max_size=5).map(".".join)


@given(
    _qname,
    st.sampled_from([RRType.A, RRType.NS, RRType.TXT, RRType.SOA, RRType.MX]),
    st.binary(max_size=30),
)
@settings(max_examples=200)
def test_bitflips_in_valid_messages(qname, qtype, noise):
    """Splicing noise into a valid message never escapes WireError."""
    wire = bytearray(encode_message(Message.make_query(qname, qtype)))
    for index, byte in enumerate(noise):
        position = 12 + (index * 7) % max(len(wire) - 12, 1)
        wire[position] ^= byte
    try:
        decode_message(bytes(wire))
    except WireError:
        pass


@given(st.binary(max_size=64))
@settings(max_examples=200)
def test_truncations_of_valid_message(suffix):
    wire = encode_message(
        Message.make_query("fuzz.example.com", RRType.TXT)
    )
    for cut in range(len(wire)):
        try:
            decode_message(wire[:cut] + suffix[: max(0, cut - len(wire))])
        except WireError:
            pass
