"""Tests for repro.dns.name."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import (
    MAX_LABEL_LENGTH,
    MAX_NAME_LENGTH,
    Name,
    NameError_,
    ROOT,
    name,
)


class TestParsing:
    def test_simple_name(self):
        parsed = Name.from_text("www.example.com")
        assert parsed.labels == ("www", "example", "com")

    def test_trailing_dot_ignored(self):
        assert Name.from_text("example.com.") == Name.from_text("example.com")

    def test_root_from_dot(self):
        assert Name.from_text(".") is ROOT

    def test_root_from_empty(self):
        assert Name.from_text("") is ROOT

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a..b")

    def test_leading_dot_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text(".example.com")

    def test_underscore_label_allowed(self):
        parsed = Name.from_text("_dmarc.example.com")
        assert parsed.labels[0] == "_dmarc"

    def test_wildcard_label_allowed(self):
        parsed = Name.from_text("*.example.com")
        assert parsed.labels[0] == "*"

    def test_invalid_characters_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("exa mple.com")

    def test_hyphen_edges_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("-bad.com")
        with pytest.raises(NameError_):
            Name.from_text("bad-.com")

    def test_interior_hyphen_allowed(self):
        assert Name.from_text("a-b.com").labels == ("a-b", "com")

    def test_label_too_long(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_label_at_limit(self):
        parsed = Name.from_text("a" * MAX_LABEL_LENGTH + ".com")
        assert len(parsed.labels[0]) == MAX_LABEL_LENGTH

    def test_name_too_long(self):
        label = "a" * 63
        text = ".".join([label] * 4) + "." + "b" * 10
        with pytest.raises(NameError_):
            Name.from_text(text)


class TestEquality:
    def test_case_insensitive_equality(self):
        assert name("Example.COM") == name("example.com")

    def test_case_insensitive_hash(self):
        assert hash(name("Example.COM")) == hash(name("example.com"))

    def test_inequality(self):
        assert name("a.com") != name("b.com")

    def test_not_equal_to_string(self):
        assert name("a.com") != "a.com"

    def test_case_preserved_in_text(self):
        assert str(name("ExAmple.com")) == "ExAmple.com"

    def test_usable_as_dict_key(self):
        table = {name("A.com"): 1}
        assert table[name("a.COM")] == 1


class TestOrdering:
    def test_canonical_order_by_reversed_labels(self):
        # a.example < b.example because the suffix compares first.
        assert name("a.example") < name("b.example")

    def test_parent_sorts_before_child(self):
        assert name("example.com") < name("a.example.com")

    def test_sorting_groups_subtrees(self):
        names = [name("z.com"), name("a.z.com"), name("a.com")]
        ordered = sorted(names)
        assert ordered == [name("a.com"), name("z.com"), name("a.z.com")]


class TestRelations:
    def test_parent(self):
        assert name("www.example.com").parent() == name("example.com")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_ancestors(self):
        chain = list(name("a.b.c").ancestors())
        assert chain == [name("b.c"), name("c"), ROOT]

    def test_is_subdomain_of_self(self):
        assert name("example.com").is_subdomain_of(name("example.com"))

    def test_is_subdomain_of_parent(self):
        assert name("www.example.com").is_subdomain_of(name("example.com"))

    def test_is_subdomain_of_root(self):
        assert name("example.com").is_subdomain_of(ROOT)

    def test_not_subdomain_of_sibling(self):
        assert not name("a.com").is_subdomain_of(name("b.com"))

    def test_label_boundary_respected(self):
        # notexample.com is not under example.com.
        assert not name("notexample.com").is_subdomain_of(name("example.com"))

    def test_proper_subdomain(self):
        assert name("www.example.com").is_proper_subdomain_of(
            name("example.com")
        )
        assert not name("example.com").is_proper_subdomain_of(
            name("example.com")
        )

    def test_relativize(self):
        prefix = name("www.example.com").relativize(name("example.com"))
        assert prefix == ("www",)

    def test_relativize_out_of_zone(self):
        with pytest.raises(NameError_):
            name("www.other.com").relativize(name("example.com"))

    def test_prepend(self):
        assert name("example.com").prepend("www") == name("www.example.com")

    def test_split(self):
        prefix, suffix = name("a.b.c").split(2)
        assert prefix == name("a")
        assert suffix == name("b.c")

    def test_split_out_of_range(self):
        with pytest.raises(NameError_):
            name("a.b").split(5)

    def test_tld(self):
        assert name("www.example.com").tld() == name("com")
        assert ROOT.tld() is None


class TestImmutability:
    def test_setattr_rejected(self):
        victim = name("example.com")
        with pytest.raises(AttributeError):
            victim.labels = ("x",)


class TestCoercion:
    def test_name_passthrough(self):
        original = name("example.com")
        assert name(original) is original

    def test_to_text_trailing_dot(self):
        assert name("example.com").to_text(trailing_dot=True) == "example.com."
        assert ROOT.to_text(trailing_dot=True) == "."


_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10
)


@given(st.lists(_label, min_size=1, max_size=5))
def test_roundtrip_through_text(labels):
    original = Name(labels)
    assert Name.from_text(str(original)) == original


@given(st.lists(_label, min_size=1, max_size=4), st.lists(_label, min_size=0, max_size=3))
def test_prepending_creates_subdomain(base_labels, extra_labels):
    base = Name(base_labels)
    child = base
    for label in extra_labels:
        child = child.prepend(label)
    assert child.is_subdomain_of(base)


@given(st.lists(_label, min_size=2, max_size=6))
def test_ancestors_are_suffixes(labels):
    original = Name(labels)
    for ancestor in original.ancestors():
        assert original.is_subdomain_of(ancestor)
