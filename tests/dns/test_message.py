"""Tests for repro.dns.message."""

import pytest

from repro.dns.message import (
    Header,
    Message,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    rrset,
)
from repro.dns.name import name
from repro.dns.rdata import A, NS, RRType, TXT


class TestHeader:
    def test_flags_roundtrip_default(self):
        header = Header(message_id=7)
        decoded = Header.from_flags_word(7, header.flags_word())
        assert decoded == header

    def test_flags_roundtrip_all_set(self):
        header = Header(
            message_id=1,
            is_response=True,
            opcode=Opcode.STATUS,
            authoritative=True,
            truncated=True,
            recursion_desired=True,
            recursion_available=True,
            rcode=Rcode.REFUSED,
        )
        decoded = Header.from_flags_word(1, header.flags_word())
        assert decoded == header

    def test_qr_bit_position(self):
        assert Header(is_response=True).flags_word() & 0x8000

    def test_rcode_low_nibble(self):
        assert Header(rcode=Rcode.NXDOMAIN).flags_word() & 0xF == 3


class TestMakeQuery:
    def test_basic(self):
        query = Message.make_query("example.com", RRType.A)
        assert query.question.qname == name("example.com")
        assert query.question.qtype == RRType.A
        assert not query.header.is_response
        assert query.header.recursion_desired

    def test_no_recursion(self):
        query = Message.make_query(
            "example.com", RRType.A, recursion_desired=False
        )
        assert not query.header.recursion_desired

    def test_ids_increment(self):
        first = Message.make_query("a.com", RRType.A)
        second = Message.make_query("a.com", RRType.A)
        assert first.header.message_id != second.header.message_id

    def test_explicit_id(self):
        query = Message.make_query("a.com", RRType.A, message_id=1234)
        assert query.header.message_id == 1234


class TestMakeResponse:
    def test_echoes_id_and_question(self):
        query = Message.make_query("example.com", RRType.TXT)
        response = query.make_response(rcode=Rcode.NXDOMAIN)
        assert response.header.message_id == query.header.message_id
        assert response.header.is_response
        assert response.header.rcode == Rcode.NXDOMAIN
        assert response.questions == query.questions

    def test_authoritative_flag(self):
        query = Message.make_query("example.com", RRType.A)
        response = query.make_response(authoritative=True)
        assert response.header.authoritative


class TestAccessors:
    def _response_with_answers(self):
        query = Message.make_query("example.com", RRType.A)
        response = query.make_response()
        response.answers.extend(
            rrset("example.com", [A("192.0.2.1"), A("192.0.2.2")])
        )
        response.answers.append(
            ResourceRecord(name("example.com"), TXT(("x",)))
        )
        return response

    def test_question_requires_exactly_one(self):
        with pytest.raises(ValueError):
            Message().question

    def test_answer_rdatas_filter(self):
        response = self._response_with_answers()
        assert len(response.answer_rdatas(RRType.A)) == 2
        assert len(response.answer_rdatas()) == 3

    def test_answers_for(self):
        response = self._response_with_answers()
        assert len(response.answers_for("EXAMPLE.com", RRType.A)) == 2
        assert response.answers_for("other.com", RRType.A) == []

    def test_referral_detection(self):
        query = Message.make_query("www.example.com", RRType.A)
        referral = query.make_response()
        referral.authorities.append(
            ResourceRecord(name("example.com"), NS(name("ns1.example.com")))
        )
        referral.additionals.append(
            ResourceRecord(name("ns1.example.com"), A("10.0.0.1"))
        )
        assert referral.is_referral()
        assert referral.referral_targets() == [name("ns1.example.com")]
        assert referral.glue_address("ns1.example.com") == "10.0.0.1"
        assert referral.glue_address("ns2.example.com") is None

    def test_answered_response_is_not_referral(self):
        response = self._response_with_answers()
        assert not response.is_referral()

    def test_all_records(self):
        response = self._response_with_answers()
        response.authorities.append(
            ResourceRecord(name("example.com"), NS(name("ns1.example.com")))
        )
        assert len(list(response.all_records())) == 4

    def test_summary_mentions_rcode(self):
        query = Message.make_query("example.com", RRType.A)
        assert "NOERROR" in query.make_response().summary()
        assert "example.com" in query.summary()


class TestRrsetHelper:
    def test_shared_owner_and_ttl(self):
        records = rrset("a.com", [A("1.1.1.1"), A("2.2.2.2")], ttl=60)
        assert all(record.owner == name("a.com") for record in records)
        assert all(record.ttl == 60 for record in records)

    def test_record_text(self):
        (record,) = rrset("a.com", [A("1.1.1.1")], ttl=60)
        assert record.to_text() == "a.com. 60 IN A 1.1.1.1"


class TestQuestion:
    def test_str(self):
        question = Question(name("example.com"), RRType.TXT)
        assert str(question) == "example.com. IN TXT"
