"""Tests for repro.dns.zone: storage and RFC 1034 lookup semantics."""

import pytest

from repro.dns.name import name
from repro.dns.rdata import A, CNAME, NS, RRType, SOA, TXT
from repro.dns.zone import (
    LookupStatus,
    Zone,
    ZoneError,
    zone_from_records,
)


@pytest.fixture
def zone():
    built = zone_from_records(
        "example.com",
        [
            ("example.com", "A", "192.0.2.1"),
            ("example.com", "TXT", '"v=spf1 -all"'),
            ("www", "CNAME", "example.com."),
            ("api", "A", "192.0.2.2"),
            ("*.wild", "A", "192.0.2.99"),
            ("sub.deleg", "NS", "ns1.other.net."),
        ],
    )
    built.ensure_soa("ns1.example.com")
    return built


class TestMutation:
    def test_add_relative_owner(self):
        z = Zone("example.com")
        record = z.add("mail", A("10.0.0.1"))
        assert record.owner == name("mail.example.com")

    def test_add_absolute_owner(self):
        z = Zone("example.com")
        record = z.add("deep.example.com", A("10.0.0.1"))
        assert record.owner == name("deep.example.com")

    def test_duplicate_record_not_double_stored(self):
        z = Zone("example.com")
        z.add("example.com", A("10.0.0.1"))
        z.add("example.com", A("10.0.0.1"))
        assert len(z.rrset("example.com", RRType.A)) == 1

    def test_serial_bumps_on_change(self):
        z = Zone("example.com")
        before = z.serial
        z.add("example.com", A("10.0.0.1"))
        assert z.serial > before

    def test_remove_by_type(self, zone):
        removed = zone.remove("example.com", RRType.TXT)
        assert removed == 1
        assert zone.rrset("example.com", RRType.TXT) == ()

    def test_remove_all_types(self, zone):
        zone.remove("example.com")
        assert zone.rrset("example.com", RRType.A) == ()
        assert zone.rrset("example.com", RRType.SOA) == ()

    def test_remove_missing_returns_zero(self, zone):
        assert zone.remove("nothing.example.com") == 0

    def test_cname_exclusivity(self):
        z = Zone("example.com")
        z.add("www", CNAME(name("example.com")))
        with pytest.raises(ZoneError):
            z.add("www", A("10.0.0.1"))

    def test_data_then_cname_rejected(self):
        z = Zone("example.com")
        z.add("www", A("10.0.0.1"))
        with pytest.raises(ZoneError):
            z.add("www", CNAME(name("example.com")))

    def test_duplicate_cname_rejected(self):
        z = Zone("example.com")
        z.add("www", CNAME(name("a.example.com")))
        with pytest.raises(ZoneError):
            z.add("www", CNAME(name("b.example.com")))

    def test_ensure_soa_idempotent(self, zone):
        serial_before = zone.serial
        zone.ensure_soa("ns1.example.com")
        assert zone.serial == serial_before


class TestLookup:
    def test_exact_match(self, zone):
        result = zone.lookup("example.com", RRType.A)
        assert result.status is LookupStatus.SUCCESS
        assert result.records[0].rdata == A("192.0.2.1")

    def test_case_insensitive_lookup(self, zone):
        result = zone.lookup("EXAMPLE.COM", RRType.A)
        assert result.status is LookupStatus.SUCCESS

    def test_nodata(self, zone):
        result = zone.lookup("api.example.com", RRType.TXT)
        assert result.status is LookupStatus.NODATA

    def test_nxdomain(self, zone):
        result = zone.lookup("missing.example.com", RRType.A)
        assert result.status is LookupStatus.NXDOMAIN

    def test_cname(self, zone):
        result = zone.lookup("www.example.com", RRType.A)
        assert result.status is LookupStatus.CNAME
        assert result.cname_target == name("example.com")

    def test_cname_query_for_cname_type(self, zone):
        result = zone.lookup("www.example.com", RRType.CNAME)
        assert result.status is LookupStatus.SUCCESS

    def test_wildcard_synthesis(self, zone):
        result = zone.lookup("anything.wild.example.com", RRType.A)
        assert result.status is LookupStatus.SUCCESS
        # Synthesized owner is the query name, not the wildcard.
        assert result.records[0].owner == name("anything.wild.example.com")

    def test_wildcard_does_not_match_other_types(self, zone):
        result = zone.lookup("anything.wild.example.com", RRType.TXT)
        assert result.status is LookupStatus.NXDOMAIN

    def test_delegation(self, zone):
        result = zone.lookup("host.sub.deleg.example.com", RRType.A)
        assert result.status is LookupStatus.DELEGATION
        targets = [record.rdata.target for record in result.records]
        assert name("ns1.other.net") in targets

    def test_delegation_at_cut_itself(self, zone):
        result = zone.lookup("sub.deleg.example.com", RRType.A)
        assert result.status is LookupStatus.DELEGATION

    def test_ns_query_at_cut_answers_from_zone(self, zone):
        result = zone.lookup("sub.deleg.example.com", RRType.NS)
        assert result.status is LookupStatus.SUCCESS

    def test_out_of_zone_query_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.lookup("other.net", RRType.A)

    def test_empty_non_terminal_is_nodata(self):
        z = Zone("example.com")
        z.add("a.b", A("10.0.0.1"))
        result = z.lookup("b.example.com", RRType.A)
        assert result.status is LookupStatus.NODATA


class TestIntrospection:
    def test_owners_sorted(self, zone):
        owners = list(zone.owners())
        assert owners == sorted(owners)

    def test_len_counts_records(self, zone):
        assert len(zone) == len(list(zone.records()))

    def test_has_owner(self, zone):
        assert zone.has_owner("api.example.com")
        assert not zone.has_owner("zzz.example.com")

    def test_nameserver_targets(self):
        z = Zone("example.com")
        z.add("example.com", NS(name("ns1.example.com")))
        z.add("example.com", NS(name("ns2.example.com")))
        assert len(z.nameserver_targets()) == 2

    def test_copy_is_independent(self, zone):
        clone = zone.copy()
        clone.add("new", A("10.9.9.9"))
        assert zone.rrset("new.example.com", RRType.A) == ()
        assert clone.rrset("new.example.com", RRType.A) != ()


class TestZoneFromRecords:
    def test_builds_all_entries(self):
        z = zone_from_records(
            "x.org", [("x.org", "A", "1.2.3.4"), ("w", "A", "1.2.3.5")]
        )
        assert len(z) == 2
