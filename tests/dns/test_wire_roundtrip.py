"""Seeded property-style round-trip tests for the wire codec and the
scan-path caches.

Two invariants anchor the fast lane:

* ``decode(encode(m)) == m`` for any well-formed message — the codec
  loses nothing the simulator cares about;
* ``encode(decode(w)) == w`` for any wire produced by our encoder —
  compression is canonical, so memoizing on wire bytes is sound.

Plus the compiled-answer cache's staleness story: zone mutations bump
``Zone.serial``, zone map changes bump ``AuthoritativeServer.generation``,
and both are observed here.
"""

import random
from types import SimpleNamespace

import pytest

from repro.dns.message import Header, Message, Question, Rcode, ResourceRecord
from repro.dns.name import Name, name
from repro.dns.rdata import (
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    SOA,
    TXT,
    A,
    RRType,
)
from repro.dns.server import AuthoritativeServer, UnhostedPolicy
from repro.dns.wire import (
    WireCodecCache,
    WireError,
    clone_message,
    decode_message,
    encode_message,
)
from repro.dns.zone import Zone
from repro.net.scanpath import ScanPathMetrics

SEED = 0x52F1C0DE
CASES = 60

_LABEL_POOL = ("www", "mail", "ns1", "cdn", "api", "x", "very-long-label")
_TLD_POOL = ("com", "net", "org", "io")


def _random_name(rng: random.Random) -> Name:
    """A random name with random per-label case, spelled consistently
    (the compression dictionary is case-insensitive, so one name must
    keep one spelling for exact round trips)."""
    depth = rng.randint(1, 4)
    labels = [rng.choice(_LABEL_POOL) for _ in range(depth)]
    labels.append(rng.choice(_TLD_POOL))
    cased = tuple(
        "".join(
            ch.upper() if rng.random() < 0.3 else ch for ch in label
        )
        for label in labels
    )
    return Name(cased)


def _random_rdata(rng: random.Random, names):
    pick = rng.randrange(8)
    other = rng.choice(names)
    if pick == 0:
        return A(f"192.0.2.{rng.randint(1, 254)}")
    if pick == 1:
        return AAAA(f"2001:db8::{rng.randint(1, 0xFFFF):x}")
    if pick == 2:
        return NS(other)
    if pick == 3:
        return CNAME(other)
    if pick == 4:
        return PTR(other)
    if pick == 5:
        return MX(rng.randint(0, 100), other)
    if pick == 6:
        return SOA(
            mname=other,
            rname=rng.choice(names),
            serial=rng.randint(1, 2**31),
            refresh=rng.randint(0, 86400),
            retry=rng.randint(0, 86400),
            expire=rng.randint(0, 86400),
            minimum=rng.randint(0, 3600),
        )
    return TXT.from_value(
        "".join(rng.choice("abcdefghij x=1;") for _ in range(rng.randint(0, 80)))
    )


def _random_message(rng: random.Random) -> Message:
    names = [_random_name(rng) for _ in range(rng.randint(1, 4))]
    header = Header(
        message_id=rng.randint(0, 0xFFFF),
        is_response=rng.random() < 0.7,
        authoritative=rng.random() < 0.5,
        truncated=rng.random() < 0.1,
        recursion_desired=rng.random() < 0.8,
        recursion_available=rng.random() < 0.3,
        rcode=rng.choice(
            (Rcode.NOERROR, Rcode.NXDOMAIN, Rcode.REFUSED, Rcode.SERVFAIL)
        ),
    )
    message = Message(header=header)
    for _ in range(rng.randint(0, 2)):
        message.questions.append(
            Question(
                rng.choice(names),
                rng.choice((RRType.A, RRType.TXT, RRType.MX, RRType.NS)),
            )
        )
    for section in (message.answers, message.authorities, message.additionals):
        for _ in range(rng.randint(0, 3)):
            section.append(
                ResourceRecord(
                    rng.choice(names),
                    _random_rdata(rng, names),
                    ttl=rng.randint(0, 86400),
                )
            )
    return message


class TestSeededRoundtrip:
    def test_decode_of_encode_is_identity(self):
        rng = random.Random(SEED)
        for case in range(CASES):
            message = _random_message(rng)
            decoded = decode_message(encode_message(message))
            assert decoded == message, f"case {case}: {message.summary()}"

    def test_encode_of_decode_is_identity_on_wire(self):
        """Our compression is canonical: re-encoding a decoded message
        reproduces the original bytes, which is what makes the decode
        cache (keyed on wire bytes) sound."""
        rng = random.Random(SEED ^ 0xFFFF)
        for case in range(CASES):
            wire = encode_message(_random_message(rng))
            assert encode_message(decode_message(wire)) == wire, f"case {case}"


class TestWireCodecCache:
    def _query(self, message_id=7, qname="www.example.com"):
        return Message.make_query(qname, RRType.A, message_id=message_id)

    def test_query_roundtrip_hit_after_store(self):
        metrics = ScanPathMetrics()
        cache = WireCodecCache(metrics)
        query = self._query()
        assert cache.query_hit(query) is None
        wire = encode_message(query)
        cache.query_store(query, wire)
        hit = cache.query_hit(self._query())
        assert hit is not None
        hit_wire, _key = hit
        assert hit_wire == wire
        assert metrics.query_misses == 1
        assert metrics.query_hits == 1

    def test_query_hit_is_id_agnostic_and_patches_wire(self):
        cache = WireCodecCache()
        query = self._query(message_id=7)
        cache.query_store(query, encode_message(query))
        other = self._query(message_id=4242)
        hit = cache.query_hit(other)
        assert hit is not None
        assert hit[0] == encode_message(other)

    def test_query_key_is_case_exact(self):
        cache = WireCodecCache()
        query = self._query(qname="www.example.com")
        cache.query_store(query, encode_message(query))
        # Name equality is case-insensitive but the wire preserves case,
        # so a re-spelled qname must not hit.
        assert cache.query_hit(self._query(qname="WWW.example.com")) is None

    def test_encode_cache_is_id_agnostic_and_exact(self):
        metrics = ScanPathMetrics()
        cache = WireCodecCache(metrics)
        response = self._query(message_id=9).make_response()
        response.answers.append(
            ResourceRecord(name("www.example.com"), A("192.0.2.1"))
        )
        first = cache.encode(response)
        assert first == encode_message(response)
        patched = clone_message(response)
        patched.header = Header(
            **{**response.header.__dict__, "message_id": 77}
        )
        assert cache.encode(patched) == encode_message(patched)
        assert metrics.encode_misses == 1
        assert metrics.encode_hits == 1
        # a different answer body must miss, not collide
        other = clone_message(response)
        other.answers = [
            ResourceRecord(name("www.example.com"), A("192.0.2.2"))
        ]
        assert cache.encode(other) == encode_message(other)
        assert metrics.encode_misses == 2

    def test_decode_cache_returns_clones_and_counts(self):
        metrics = ScanPathMetrics()
        cache = WireCodecCache(metrics)
        wire = encode_message(self._query())
        first = cache.decode(wire)
        first.answers.append("garbage")
        second = cache.decode(wire)
        assert second == self._query()
        assert metrics.decode_misses == 1
        assert metrics.decode_hits == 1

    def test_decode_failures_are_not_cached(self):
        cache = WireCodecCache()
        with pytest.raises(WireError):
            cache.decode(b"\x00\x01")
        with pytest.raises(WireError):
            cache.decode(b"\x00\x01")
        assert cache._decode_cache == {}

    def test_messages_with_records_are_not_query_cached(self):
        cache = WireCodecCache()
        response = self._query().make_response()
        response.answers.append(
            ResourceRecord(name("www.example.com"), A("192.0.2.1"))
        )
        cache.query_store(response, encode_message(response))
        assert cache.query_hit(response) is None

    def test_fifo_bound_evicts_oldest(self):
        cache = WireCodecCache(max_entries=2)
        queries = [self._query(message_id=i, qname=f"q{i}.example.com")
                   for i in range(3)]
        for query in queries:
            cache.query_store(query, encode_message(query))
        assert cache.query_hit(queries[0]) is None
        assert cache.query_hit(queries[2]) is not None

    def test_clone_message_shares_frozen_parts_only(self):
        message = self._query().make_response()
        clone = clone_message(message)
        assert clone == message
        assert clone.questions is not message.questions
        assert clone.header is message.header


def _fast_network():
    return SimpleNamespace(scan_cache_enabled=True, scanpath=ScanPathMetrics())


class TestCompiledAnswerCache:
    def _server(self):
        server = AuthoritativeServer("ns1.prov.example")
        zone = Zone("victim.example")
        zone.ensure_soa("ns1.prov.example")
        zone.add("www", A("192.0.2.10"))
        server.load_zone(zone)
        return server, zone

    def test_hit_counts_and_identical_answers(self):
        server, _ = self._server()
        network = _fast_network()
        query = Message.make_query("www.victim.example", RRType.A, message_id=5)
        first = server.handle_dns_query(query, "198.51.100.1", network)
        second = server.handle_dns_query(query, "198.51.100.1", network)
        assert network.scanpath.compiled_misses == 1
        assert network.scanpath.compiled_hits == 1
        assert first == second
        assert encode_message(second) == second.compiled_wire

    def test_message_id_patch_matches_full_encode(self):
        server, _ = self._server()
        network = _fast_network()
        server.handle_dns_query(
            Message.make_query("www.victim.example", RRType.A, message_id=5),
            "198.51.100.1",
            network,
        )
        patched = server.handle_dns_query(
            Message.make_query("www.victim.example", RRType.A, message_id=900),
            "198.51.100.1",
            network,
        )
        assert patched.header.message_id == 900
        assert patched.compiled_wire == encode_message(patched)
        assert network.scanpath.compiled_hits == 1

    def test_zone_mutation_invalidates_via_serial(self):
        server, zone = self._server()
        network = _fast_network()
        query = Message.make_query("www.victim.example", RRType.A, message_id=5)
        before = server.handle_dns_query(query, "198.51.100.1", network)
        assert before.answer_rdatas() == [A("192.0.2.10")]
        serial_before = zone.serial
        zone.remove("www", RRType.A)
        zone.add("www", A("203.0.113.99"))
        assert zone.serial > serial_before
        after = server.handle_dns_query(query, "198.51.100.1", network)
        assert after.answer_rdatas() == [A("203.0.113.99")]
        assert network.scanpath.compiled_misses == 2

    def test_zone_map_changes_bump_generation_and_flush(self):
        server, _ = self._server()
        network = _fast_network()
        query = Message.make_query("www.victim.example", RRType.A, message_id=5)
        server.handle_dns_query(query, "198.51.100.1", network)
        assert server._compiled
        generation = server.generation
        server.unload_zone("victim.example")
        assert server.generation == generation + 1
        assert not server._compiled
        refused = server.handle_dns_query(query, "198.51.100.1", network)
        assert refused.rcode == Rcode.REFUSED

    def test_policy_change_invalidates_unhosted_answers(self):
        server, _ = self._server()
        network = _fast_network()
        query = Message.make_query("other.example", RRType.A, message_id=5)
        refused = server.handle_dns_query(query, "198.51.100.1", network)
        assert refused.rcode == Rcode.REFUSED
        server.unhosted_policy = UnhostedPolicy.PROTECTIVE
        server.protective_records = [(RRType.A, A("198.18.0.1"))]
        protective = server.handle_dns_query(query, "198.51.100.1", network)
        assert protective.rcode == Rcode.NOERROR
        assert protective.answer_rdatas() == [A("198.18.0.1")]

    def test_naive_and_compiled_answers_encode_identically(self):
        rng = random.Random(SEED)
        server, _ = self._server()
        fast = _fast_network()
        naive = SimpleNamespace(scan_cache_enabled=False)
        for _ in range(40):
            qname = rng.choice(
                ("www.victim.example", "victim.example",
                 "miss.victim.example", "unrelated.example")
            )
            qtype = rng.choice((RRType.A, RRType.TXT, RRType.SOA))
            mid = rng.randint(0, 0xFFFF)
            query = Message.make_query(qname, qtype, message_id=mid)
            fast_answer = server.handle_dns_query(query, "198.51.100.1", fast)
            naive_answer = server.handle_dns_query(query, "198.51.100.1", naive)
            assert encode_message(fast_answer) == encode_message(naive_answer)
