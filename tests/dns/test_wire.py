"""Tests for repro.dns.wire: encoding, decoding, compression, malformed input."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.message import Message, Rcode, ResourceRecord, rrset
from repro.dns.name import name
from repro.dns.rdata import A, CNAME, MX, NS, RRType, SOA, TXT
from repro.dns.wire import WireError, decode_message, encode_message, roundtrip


def _sample_response():
    query = Message.make_query("www.example.com", RRType.A, message_id=99)
    response = query.make_response(authoritative=True)
    response.answers.append(
        ResourceRecord(name("www.example.com"), CNAME(name("example.com")))
    )
    response.answers.extend(rrset("example.com", [A("192.0.2.1")]))
    response.authorities.append(
        ResourceRecord(name("example.com"), NS(name("ns1.example.com")))
    )
    response.additionals.append(
        ResourceRecord(name("ns1.example.com"), A("10.1.1.1"))
    )
    return response


class TestRoundtrip:
    def test_query(self):
        query = Message.make_query("example.com", RRType.TXT)
        decoded = roundtrip(query)
        assert decoded.question.qname == name("example.com")
        assert decoded.question.qtype == RRType.TXT
        assert decoded.header.message_id == query.header.message_id

    def test_full_response(self):
        response = _sample_response()
        decoded = roundtrip(response)
        assert decoded.header.authoritative
        assert len(decoded.answers) == 2
        assert len(decoded.authorities) == 1
        assert len(decoded.additionals) == 1
        assert decoded.answers[0].rdata == CNAME(name("example.com"))

    def test_soa_and_mx(self):
        query = Message.make_query("example.com", RRType.SOA)
        response = query.make_response()
        response.answers.append(
            ResourceRecord(
                name("example.com"),
                SOA(name("ns1.example.com"), name("h.example.com"), 3),
            )
        )
        response.answers.append(
            ResourceRecord(
                name("example.com"), MX(10, name("mail.example.com"))
            )
        )
        decoded = roundtrip(response)
        soa = decoded.answers[0].rdata
        assert isinstance(soa, SOA) and soa.serial == 3
        mx = decoded.answers[1].rdata
        assert isinstance(mx, MX) and mx.preference == 10

    def test_txt_with_multiple_strings(self):
        query = Message.make_query("example.com", RRType.TXT)
        response = query.make_response()
        response.answers.append(
            ResourceRecord(name("example.com"), TXT(("one", "two")))
        )
        decoded = roundtrip(response)
        assert decoded.answers[0].rdata == TXT(("one", "two"))

    def test_empty_message(self):
        decoded = roundtrip(Message())
        assert decoded.questions == []
        assert decoded.answers == []

    def test_case_is_lowered_by_compression_paths(self):
        # Compression matches case-insensitively; the decoded name must
        # still compare equal.
        query = Message.make_query("WwW.ExAmPlE.CoM", RRType.A)
        decoded = roundtrip(query)
        assert decoded.question.qname == name("www.example.com")

    def test_rcode_preserved(self):
        query = Message.make_query("nope.example.com", RRType.A)
        response = query.make_response(rcode=Rcode.NXDOMAIN)
        assert roundtrip(response).header.rcode == Rcode.NXDOMAIN


class TestCompression:
    def test_compression_shrinks_repeated_names(self):
        response = _sample_response()
        wire = encode_message(response)
        # The uncompressed rendering of all names would be much larger;
        # check a pointer byte (0xC0 high bits) is present.
        assert any(byte & 0xC0 == 0xC0 for byte in wire[12:])

    def test_compressed_names_decode_identically(self):
        response = _sample_response()
        decoded = decode_message(encode_message(response))
        assert decoded.answers[1].owner == name("example.com")
        assert decoded.authorities[0].rdata == NS(name("ns1.example.com"))

    def test_compression_across_sections(self):
        # additionals reference a name first seen in authorities.
        response = _sample_response()
        without_additional = Message(
            header=response.header,
            questions=response.questions,
            answers=response.answers,
            authorities=response.authorities,
        )
        base = len(encode_message(without_additional))
        full = len(encode_message(response))
        # ns1.example.com (17 octets uncompressed) should cost only a
        # 2-byte pointer as owner.
        assert full - base < 17 + 10


class TestMalformedInput:
    def test_short_header(self):
        with pytest.raises(WireError):
            decode_message(b"\x00\x01\x00")

    def test_truncated_question(self):
        query = Message.make_query("example.com", RRType.A)
        wire = encode_message(query)
        with pytest.raises(WireError):
            decode_message(wire[:-3])

    def test_trailing_garbage(self):
        wire = encode_message(Message.make_query("example.com", RRType.A))
        with pytest.raises(WireError):
            decode_message(wire + b"\x00")

    def test_forward_pointer_rejected(self):
        # Header + a name that points forward to itself.
        header = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        bad_name = b"\xc0\x0c"  # points at its own offset (12)
        with pytest.raises(WireError):
            decode_message(header + bad_name + b"\x00\x01\x00\x01")

    def test_reserved_label_type_rejected(self):
        header = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        with pytest.raises(WireError):
            decode_message(header + b"\x80x\x00" + b"\x00\x01\x00\x01")

    def test_name_running_past_end(self):
        header = b"\x00\x01\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00"
        with pytest.raises(WireError):
            decode_message(header + b"\x3fabc")

    def test_bad_rdlength(self):
        response = Message.make_query(
            "example.com", RRType.A
        ).make_response()
        response.answers.extend(rrset("example.com", [A("192.0.2.1")]))
        wire = bytearray(encode_message(response))
        # Corrupt the RDLENGTH of the answer (last 6 bytes are rdlength +
        # 4 address octets).
        wire[-6:-4] = b"\x00\xff"
        with pytest.raises(WireError):
            decode_message(bytes(wire))


_hostname = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
    min_size=1,
    max_size=4,
).map(lambda labels: name(".".join(labels)))


@given(
    _hostname,
    st.sampled_from([RRType.A, RRType.TXT, RRType.NS, RRType.MX]),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_any_query_roundtrips(qname, qtype, message_id):
    query = Message.make_query(qname, qtype, message_id=message_id)
    decoded = roundtrip(query)
    assert decoded.question.qname == qname
    assert decoded.question.qtype == qtype
    assert decoded.header.message_id == message_id


@given(
    _hostname,
    st.lists(
        st.integers(min_value=0, max_value=0xFFFFFFFF).map(
            lambda value: A.from_wire(value.to_bytes(4, "big"))
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_answers_roundtrip(owner, rdatas):
    query = Message.make_query(owner, RRType.A)
    response = query.make_response()
    response.answers.extend(rrset(owner, rdatas))
    decoded = roundtrip(response)
    assert [record.rdata for record in decoded.answers] == rdatas
