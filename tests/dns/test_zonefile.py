"""Tests for repro.dns.zonefile."""

import pytest

from repro.dns.name import name
from repro.dns.rdata import A, MX, RRType, TXT
from repro.dns.zone import zone_from_records
from repro.dns.zonefile import (
    ZoneFileError,
    parse_zone,
    render_zone,
    roundtrip_zone,
)

SAMPLE = """\
$ORIGIN example.com.
$TTL 600
@ IN A 192.0.2.1          ; apex address
www 300 IN CNAME example.com.
mail IN MX 10 mx1.example.com.
@ IN TXT "v=spf1 ip4:192.0.2.1 -all"
api.example.com. IN A 192.0.2.2
"""


class TestParse:
    def test_origin_and_relative_owners(self):
        zone = parse_zone(SAMPLE)
        assert zone.origin == name("example.com")
        assert zone.rrset("www.example.com", RRType.CNAME)
        assert zone.rrset("example.com", RRType.A)[0].rdata == A("192.0.2.1")

    def test_absolute_owner(self):
        zone = parse_zone(SAMPLE)
        assert zone.rrset("api.example.com", RRType.A)

    def test_default_ttl_applied(self):
        zone = parse_zone(SAMPLE)
        apex = zone.rrset("example.com", RRType.A)[0]
        assert apex.ttl == 600

    def test_explicit_ttl_wins(self):
        zone = parse_zone(SAMPLE)
        www = zone.rrset("www.example.com", RRType.CNAME)[0]
        assert www.ttl == 300

    def test_comment_stripped(self):
        zone = parse_zone(SAMPLE)
        assert len(zone.rrset("example.com", RRType.A)) == 1

    def test_semicolon_inside_quotes_kept(self):
        zone = parse_zone(
            '$ORIGIN x.org.\n@ IN TXT "v=DMARC1; p=none"\n'
        )
        record = zone.rrset("x.org", RRType.TXT)[0]
        assert record.rdata == TXT(("v=DMARC1; p=none",))

    def test_mx_record(self):
        zone = parse_zone(SAMPLE)
        record = zone.rrset("mail.example.com", RRType.MX)[0]
        assert record.rdata == MX(10, name("mx1.example.com"))

    def test_origin_argument(self):
        zone = parse_zone("@ IN A 1.2.3.4\n", origin="seed.org")
        assert zone.origin == name("seed.org")

    def test_blank_lines_ignored(self):
        zone = parse_zone("$ORIGIN a.com.\n\n\n@ IN A 1.1.1.1\n")
        assert len(zone) == 1


class TestParseErrors:
    def test_record_before_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone("@ IN A 1.2.3.4\n")

    def test_bad_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$BOGUS x\n")

    def test_bad_ttl_directive(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$TTL abc\n")

    def test_missing_rdata(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN a.com.\n@ IN A\n")

    def test_unknown_type(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN a.com.\n@ IN FROB data\n")

    def test_invalid_rdata(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN a.com.\n@ IN A not-an-ip\n")

    def test_empty_file(self):
        with pytest.raises(ZoneFileError):
            parse_zone("")

    def test_error_carries_line_number(self):
        with pytest.raises(ZoneFileError, match="line 2"):
            parse_zone("$ORIGIN a.com.\n@ IN\n")


class TestRenderAndRoundtrip:
    def test_render_contains_all_records(self):
        zone = zone_from_records(
            "r.org",
            [("r.org", "A", "1.2.3.4"), ("w", "TXT", '"hello world"')],
        )
        text = render_zone(zone)
        assert "$ORIGIN r.org." in text
        assert "1.2.3.4" in text
        assert '"hello world"' in text

    def test_roundtrip_preserves_records(self):
        zone = zone_from_records(
            "r.org",
            [
                ("r.org", "A", "1.2.3.4"),
                ("r.org", "MX", "5 mx.r.org."),
                ("w", "CNAME", "r.org."),
                ("r.org", "TXT", '"v=spf1 -all"'),
            ],
        )
        clone = roundtrip_zone(zone)
        assert clone.origin == zone.origin
        assert len(clone) == len(zone)
        assert {record.rdata for record in clone.records()} == {
            record.rdata for record in zone.records()
        }

    def test_rendered_records_sorted(self):
        zone = zone_from_records(
            "r.org", [("z", "A", "9.9.9.9"), ("a", "A", "1.1.1.1")]
        )
        text = render_zone(zone)
        assert text.index("a.r.org.") < text.index("z.r.org.")
