"""Tests for repro.dns.psl."""

import pytest

from repro.dns.name import name
from repro.dns.psl import DEFAULT_PSL, PublicSuffixList


class TestPublicSuffix:
    def test_plain_tld(self):
        assert DEFAULT_PSL.public_suffix("example.com") == name("com")

    def test_two_level_suffix(self):
        assert DEFAULT_PSL.public_suffix("site.gov.cn") == name("gov.cn")

    def test_longest_match_wins(self):
        # gov.cn is longer than cn.
        assert DEFAULT_PSL.public_suffix("a.b.gov.cn") == name("gov.cn")

    def test_unlisted_tld_implicit_rule(self):
        psl = PublicSuffixList(rules=["com"])
        assert psl.public_suffix("example.unknowntld") == name("unknowntld")

    def test_root_has_no_suffix(self):
        assert DEFAULT_PSL.public_suffix(name(".")) is None


class TestWildcardAndException:
    def test_wildcard_rule(self):
        # *.ck makes foo.ck a public suffix.
        assert DEFAULT_PSL.is_public_suffix("foo.ck")

    def test_exception_rule(self):
        # !www.ck: www.ck is registrable despite *.ck.
        assert not DEFAULT_PSL.is_public_suffix("www.ck")
        assert DEFAULT_PSL.registrable_domain("www.ck") == name("www.ck")

    def test_domain_under_wildcard_suffix(self):
        assert DEFAULT_PSL.registrable_domain("shop.foo.ck") == name(
            "shop.foo.ck"
        )


class TestRegistrableDomain:
    def test_sld(self):
        assert DEFAULT_PSL.registrable_domain("example.com") == name(
            "example.com"
        )

    def test_subdomain_collapses_to_sld(self):
        assert DEFAULT_PSL.registrable_domain("a.b.example.com") == name(
            "example.com"
        )

    def test_etld_plus_one_under_gov_cn(self):
        assert DEFAULT_PSL.registrable_domain("www.beijing.gov.cn") == name(
            "beijing.gov.cn"
        )

    def test_public_suffix_itself_not_registrable(self):
        assert DEFAULT_PSL.registrable_domain("gov.cn") is None
        assert DEFAULT_PSL.registrable_domain("com") is None

    def test_is_registrable(self):
        assert DEFAULT_PSL.is_registrable("example.com")
        assert not DEFAULT_PSL.is_registrable("www.example.com")
        assert not DEFAULT_PSL.is_registrable("com")


class TestIsPublicSuffix:
    @pytest.mark.parametrize(
        "domain", ["com", "gov.cn", "edu.cn", "co.uk", "gov.kp"]
    )
    def test_known_suffixes(self, domain):
        assert DEFAULT_PSL.is_public_suffix(domain)

    @pytest.mark.parametrize(
        "domain", ["example.com", "github.com", "beijing.gov.cn"]
    )
    def test_registrables_are_not_suffixes(self, domain):
        assert not DEFAULT_PSL.is_public_suffix(domain)


class TestCustomRules:
    def test_add_rule_after_construction(self):
        psl = PublicSuffixList(rules=["com"])
        assert not psl.is_public_suffix("city.custom")
        psl.add_rule("custom")
        psl.add_rule("gov.custom")
        assert psl.is_public_suffix("gov.custom")
        assert psl.registrable_domain("x.gov.custom") == name("x.gov.custom")

    def test_blank_rule_ignored(self):
        psl = PublicSuffixList(rules=["com", "   "])
        assert psl.is_public_suffix("com")

    def test_case_insensitive_rules(self):
        psl = PublicSuffixList(rules=["COM"])
        assert psl.is_public_suffix("com")
