"""Tests for repro.dns.server: authoritative answering behaviours."""

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.name import name
from repro.dns.rdata import A, RRType, TXT
from repro.dns.server import (
    AuthoritativeServer,
    UnhostedPolicy,
    make_protective_server,
)
from repro.dns.zone import Zone, zone_from_records


@pytest.fixture
def server():
    srv = AuthoritativeServer("ns1.host.net")
    zone = zone_from_records(
        "example.com",
        [
            ("example.com", "A", "192.0.2.1"),
            ("www", "CNAME", "example.com."),
            ("ext", "CNAME", "target.other.net."),
            ("loop1", "CNAME", "loop2.example.com."),
            ("loop2", "CNAME", "loop1.example.com."),
            ("child.example.com", "NS", "ns1.child.example.com."),
            ("ns1.child.example.com", "A", "10.5.5.5"),
        ],
    )
    zone.ensure_soa("ns1.host.net")
    srv.load_zone(zone)
    return srv


def ask(server, qname, qtype=RRType.A):
    query = Message.make_query(qname, qtype, recursion_desired=False)
    return server.handle_dns_query(query, "198.51.100.1", None)


class TestAuthoritativeAnswers:
    def test_positive_answer(self, server):
        response = ask(server, "example.com")
        assert response.header.rcode == Rcode.NOERROR
        assert response.header.authoritative
        assert response.answers[0].rdata == A("192.0.2.1")

    def test_cname_chain_followed_in_zone(self, server):
        response = ask(server, "www.example.com")
        rdatas = [record.rdata for record in response.answers]
        assert A("192.0.2.1") in rdatas
        assert len(response.answers) == 2  # CNAME + A

    def test_out_of_zone_cname_returned_unchased(self, server):
        response = ask(server, "ext.example.com")
        assert len(response.answers) == 1
        assert response.header.rcode == Rcode.NOERROR

    def test_cname_loop_servfail(self, server):
        response = ask(server, "loop1.example.com")
        assert response.header.rcode == Rcode.SERVFAIL

    def test_nxdomain_with_soa(self, server):
        response = ask(server, "missing.example.com")
        assert response.header.rcode == Rcode.NXDOMAIN
        assert any(
            record.rrtype == RRType.SOA for record in response.authorities
        )

    def test_nodata_with_soa(self, server):
        response = ask(server, "example.com", RRType.TXT)
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers == []
        assert any(
            record.rrtype == RRType.SOA for record in response.authorities
        )

    def test_referral_with_glue(self, server):
        response = ask(server, "deep.child.example.com")
        assert response.is_referral()
        assert response.glue_address("ns1.child.example.com") == "10.5.5.5"

    def test_no_question_formerr(self, server):
        response = server.handle_dns_query(Message(), "1.2.3.4", None)
        assert response.header.rcode == Rcode.FORMERR

    def test_query_count_increments(self, server):
        before = server.query_count
        ask(server, "example.com")
        assert server.query_count == before + 1


class TestUnhostedBehaviour:
    def test_refused_by_default(self, server):
        response = ask(server, "unhosted.net")
        assert response.header.rcode == Rcode.REFUSED

    def test_protective_records(self):
        srv = make_protective_server("ns1.prot.net", "203.0.113.200")
        response = ask(srv, "any-domain.org")
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers[0].rdata == A("203.0.113.200")
        # Synthesized at the queried name.
        assert response.answers[0].owner == name("any-domain.org")

    def test_protective_txt(self):
        srv = make_protective_server("ns1.prot.net", "203.0.113.200")
        response = ask(srv, "any-domain.org", RRType.TXT)
        assert isinstance(response.answers[0].rdata, TXT)

    def test_protective_nodata_for_other_types(self):
        srv = make_protective_server("ns1.prot.net", "203.0.113.200")
        response = ask(srv, "any-domain.org", RRType.MX)
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers == []

    def test_recursive_fallback(self):
        answer = Message.make_query("real.net", RRType.A).make_response()
        answer.answers.append(
            __import__(
                "repro.dns.message", fromlist=["ResourceRecord"]
            ).ResourceRecord(name("real.net"), A("198.51.100.77"))
        )

        srv = AuthoritativeServer(
            "ns1.mis.net",
            unhosted_policy=UnhostedPolicy.RECURSIVE,
            recursive_fallback=lambda qname, qtype: answer,
        )
        response = ask(srv, "real.net")
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers[0].rdata == A("198.51.100.77")
        assert response.header.recursion_available

    def test_recursive_fallback_failure_servfail(self):
        srv = AuthoritativeServer(
            "ns1.mis.net",
            unhosted_policy=UnhostedPolicy.RECURSIVE,
            recursive_fallback=lambda qname, qtype: None,
        )
        response = ask(srv, "real.net")
        assert response.header.rcode == Rcode.SERVFAIL


class TestZoneManagement:
    def test_longest_origin_wins(self):
        srv = AuthoritativeServer("ns1.host.net")
        outer = zone_from_records("example.com", [("example.com", "A", "1.1.1.1")])
        inner = zone_from_records(
            "sub.example.com", [("sub.example.com", "A", "2.2.2.2")]
        )
        srv.load_zone(outer)
        srv.load_zone(inner)
        assert srv.zone_for("x.sub.example.com") is inner
        assert srv.zone_for("x.example.com") is outer

    def test_unload_zone(self, server):
        assert server.unload_zone("example.com")
        assert not server.unload_zone("example.com")
        response = ask(server, "example.com")
        assert response.header.rcode == Rcode.REFUSED

    def test_zone_at(self, server):
        assert server.zone_at("example.com") is not None
        assert server.zone_at("www.example.com") is None

    def test_hosts_zone(self, server):
        assert server.hosts_zone("example.com")
        assert not server.hosts_zone("other.com")

    def test_reloading_replaces(self):
        srv = AuthoritativeServer("ns1.host.net")
        first = zone_from_records("a.com", [("a.com", "A", "1.1.1.1")])
        second = zone_from_records("a.com", [("a.com", "A", "2.2.2.2")])
        srv.load_zone(first)
        srv.load_zone(second)
        response = ask(srv, "a.com")
        assert response.answers[0].rdata == A("2.2.2.2")
