"""Tests for repro.dns.resolver against a real delegation tree."""

import pytest

from repro.dns.message import Message, Rcode, ResourceRecord
from repro.dns.name import name
from repro.dns.rdata import A, CNAME, RRType
from repro.dns.resolver import (
    OpenResolver,
    RecursiveResolver,
    ResolutionError,
    StubResolver,
)
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import zone_from_records
from repro.hosting.registry import DnsRoot
from repro.net.network import SimulatedInternet


@pytest.fixture
def tree():
    """A network with root, .com/.net TLDs and two authoritative zones."""
    network = SimulatedInternet()
    root = DnsRoot(network)

    example_server = AuthoritativeServer("ns1.example.com")
    example_zone = zone_from_records(
        "example.com",
        [
            ("example.com", "A", "192.0.2.10"),
            ("www", "CNAME", "example.com."),
            ("alias", "CNAME", "target.other.net."),
        ],
    )
    example_zone.ensure_soa("ns1.example.com")
    example_server.load_zone(example_zone)
    network.register_dns_host("10.10.0.1", example_server)

    other_server = AuthoritativeServer("ns1.other.net")
    other_zone = zone_from_records(
        "other.net",
        [
            ("target", "A", "192.0.2.20"),
            ("ns1", "A", "10.20.0.1"),
        ],
    )
    other_zone.ensure_soa("ns1.other.net")
    other_server.load_zone(other_zone)
    network.register_dns_host("10.20.0.1", other_server)

    root.register("example.com", "owner")
    root.delegate("example.com", [(name("ns1.example.com"), "10.10.0.1")])
    root.register("other.net", "owner2")
    root.delegate("other.net", [(name("ns1.other.net"), "10.20.0.1")])
    # Glue for example.com's in-bailiwick nameserver.
    root.tld_zone("com").add("ns1.example.com", A("10.10.0.1"))

    resolver = RecursiveResolver("10.99.0.1", network, root.root_addresses)
    return network, root, resolver


class TestIterativeResolution:
    def test_simple_a_lookup(self, tree):
        _, _, resolver = tree
        assert resolver.lookup_a("example.com") == ["192.0.2.10"]

    def test_in_zone_cname(self, tree):
        _, _, resolver = tree
        assert resolver.lookup_a("www.example.com") == ["192.0.2.10"]

    def test_cross_zone_cname_chase(self, tree):
        _, _, resolver = tree
        response = resolver.resolve("alias.example.com", RRType.A)
        rdatas = [record.rdata for record in response.answers]
        assert A("192.0.2.20") in rdatas
        assert any(isinstance(rdata, CNAME) for rdata in rdatas)

    def test_nxdomain(self, tree):
        _, _, resolver = tree
        response = resolver.resolve("missing.example.com", RRType.A)
        assert response.header.rcode == Rcode.NXDOMAIN

    def test_nodata(self, tree):
        _, _, resolver = tree
        response = resolver.resolve("example.com", RRType.TXT)
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers == []

    def test_unregistered_domain_nxdomain(self, tree):
        _, _, resolver = tree
        response = resolver.resolve("nonexistent.com", RRType.A)
        assert response.header.rcode == Rcode.NXDOMAIN

    def test_dead_nameserver_resolution_error(self, tree):
        network, root, resolver = tree
        network.set_online("10.10.0.1", False)
        resolver.flush_cache()
        with pytest.raises(ResolutionError):
            resolver.resolve("example.com", RRType.A)

    def test_upstream_query_counter(self, tree):
        _, _, resolver = tree
        before = resolver.stats.upstream_queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.upstream_queries > before


class TestCache:
    def test_cache_hit_avoids_upstream(self, tree):
        _, _, resolver = tree
        resolver.resolve("example.com", RRType.A)
        upstream_before = resolver.stats.upstream_queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.upstream_queries == upstream_before
        assert resolver.stats.cache_hits == 1

    def test_cache_expires_with_ttl(self, tree):
        network, _, resolver = tree
        resolver.resolve("example.com", RRType.A)
        network.tick(10_000)  # well past the 300 s default TTL
        upstream_before = resolver.stats.upstream_queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.upstream_queries > upstream_before

    def test_cache_disabled(self, tree):
        network, root, _ = tree
        resolver = RecursiveResolver(
            "10.99.0.2", network, root.root_addresses, cache_enabled=False
        )
        resolver.resolve("example.com", RRType.A)
        upstream_before = resolver.stats.upstream_queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.upstream_queries > upstream_before

    def test_flush(self, tree):
        _, _, resolver = tree
        resolver.resolve("example.com", RRType.A)
        resolver.flush_cache()
        upstream_before = resolver.stats.upstream_queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.upstream_queries > upstream_before


class TestAsDnsService:
    def test_answers_recursive_clients(self, tree):
        network, _, resolver = tree
        network.register_dns_host("10.99.0.1", resolver)
        stub = StubResolver("10.50.0.1", network, "10.99.0.1")
        assert stub.lookup_a("example.com") == ["192.0.2.10"]

    def test_refuses_non_rd_queries(self, tree):
        network, _, resolver = tree
        network.register_dns_host("10.99.0.1", resolver)
        query = Message.make_query(
            "example.com", RRType.A, recursion_desired=False
        )
        response = network.query_dns("10.50.0.1", "10.99.0.1", query)
        assert response.header.rcode == Rcode.REFUSED

    def test_servfail_on_failure(self, tree):
        network, _, resolver = tree
        network.register_dns_host("10.99.0.1", resolver)
        network.set_online("10.10.0.1", False)
        query = Message.make_query("example.com", RRType.A)
        response = network.query_dns("10.50.0.1", "10.99.0.1", query)
        assert response.header.rcode == Rcode.SERVFAIL

    def test_formerr_on_empty_query(self, tree):
        network, _, resolver = tree
        response = resolver.handle_dns_query(Message(), "10.50.0.1", network)
        assert response.header.rcode == Rcode.FORMERR


class TestOpenResolver:
    def test_honest_by_default(self, tree):
        network, root, _ = tree
        resolver = OpenResolver(
            "10.99.0.3", network, root.root_addresses
        )
        network.register_dns_host("10.99.0.3", resolver)
        stub = StubResolver("10.50.0.1", network, "10.99.0.3")
        assert stub.lookup_a("example.com") == ["192.0.2.10"]
        assert not resolver.is_manipulated

    def test_manipulated_answers_rewritten(self, tree):
        network, root, _ = tree

        def rewriter(response):
            response.answers = [
                ResourceRecord(record.owner, A("6.6.6.6"), record.ttl)
                if isinstance(record.rdata, A)
                else record
                for record in response.answers
            ]
            return response

        resolver = OpenResolver(
            "10.99.0.4", network, root.root_addresses, rewriter=rewriter
        )
        network.register_dns_host("10.99.0.4", resolver)
        stub = StubResolver("10.50.0.1", network, "10.99.0.4")
        assert stub.lookup_a("example.com") == ["6.6.6.6"]
        assert resolver.is_manipulated

    def test_requires_root_hints(self, tree):
        network, _, _ = tree
        with pytest.raises(ValueError):
            RecursiveResolver("10.99.0.5", network, [])
