"""Tests for repro.dns.rdata."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import name
from repro.dns.rdata import (
    A,
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    RDATA_CLASSES,
    RdataError,
    RRType,
    SOA,
    TXT,
    rdata_from_text,
    rdata_from_wire,
)


class TestA:
    def test_roundtrip_wire(self):
        record = A("192.0.2.1")
        assert A.from_wire(record.to_wire()) == record

    def test_text(self):
        assert A.from_text(" 10.0.0.1 ").to_text() == "10.0.0.1"

    def test_invalid_address(self):
        with pytest.raises(RdataError):
            A("999.1.1.1")
        with pytest.raises(RdataError):
            A("not-an-ip")

    def test_wrong_wire_length(self):
        with pytest.raises(RdataError):
            A.from_wire(b"\x01\x02\x03")


class TestAAAA:
    def test_roundtrip(self):
        record = AAAA("2001:db8::1")
        assert AAAA.from_wire(record.to_wire()) == record

    def test_normalization(self):
        assert AAAA("2001:0db8:0000::0001").address == "2001:db8::1"

    def test_invalid(self):
        with pytest.raises(RdataError):
            AAAA("2001:::1")


class TestNameBearing:
    @pytest.mark.parametrize("cls", [NS, CNAME, PTR])
    def test_roundtrip(self, cls):
        record = cls(name("ns1.example.com"))
        assert cls.from_wire(record.to_wire()) == record

    def test_ns_text_has_trailing_dot(self):
        assert NS(name("ns1.example.com")).to_text() == "ns1.example.com."

    def test_from_text_strips_dot(self):
        assert NS.from_text("ns1.example.com.").target == name(
            "ns1.example.com"
        )


class TestSOA:
    def test_roundtrip_wire(self):
        record = SOA(
            mname=name("ns1.example.com"),
            rname=name("hostmaster.example.com"),
            serial=42,
            refresh=1,
            retry=2,
            expire=3,
            minimum=4,
        )
        assert SOA.from_wire(record.to_wire()) == record

    def test_roundtrip_text(self):
        record = SOA(name("a.b"), name("c.d"), 7)
        assert SOA.from_text(record.to_text()) == record

    def test_bad_field_count(self):
        with pytest.raises(RdataError):
            SOA.from_text("ns1.example.com. hostmaster.example.com. 1 2 3")


class TestMX:
    def test_roundtrip(self):
        record = MX(10, name("mail.example.com"))
        assert MX.from_wire(record.to_wire()) == record

    def test_text(self):
        assert MX.from_text("10 mail.example.com.").preference == 10

    def test_preference_bounds(self):
        with pytest.raises(RdataError):
            MX(70000, name("mail.example.com"))
        with pytest.raises(RdataError):
            MX(-1, name("mail.example.com"))

    def test_truncated_wire(self):
        with pytest.raises(RdataError):
            MX.from_wire(b"\x00")


class TestTXT:
    def test_single_string_roundtrip(self):
        record = TXT(("v=spf1 -all",))
        assert TXT.from_wire(record.to_wire()) == record

    def test_multi_string_value_concatenates(self):
        record = TXT(("abc", "def"))
        assert record.value == "abcdef"

    def test_from_value_chunks_long_strings(self):
        long_value = "x" * 600
        record = TXT.from_value(long_value)
        assert len(record.strings) == 3
        assert all(len(chunk) <= 255 for chunk in record.strings)
        assert record.value == long_value

    def test_from_value_empty(self):
        assert TXT.from_value("").strings == ("",)

    def test_string_too_long_rejected(self):
        with pytest.raises(RdataError):
            TXT(("y" * 256,))

    def test_empty_strings_tuple_rejected(self):
        with pytest.raises(RdataError):
            TXT(())

    def test_text_quoting(self):
        record = TXT(('he said "hi"',))
        rendered = record.to_text()
        assert TXT.from_text(rendered) == record

    def test_from_text_multiple_quoted(self):
        record = TXT.from_text('"part one" "part two"')
        assert record.strings == ("part one", "part two")

    def test_from_text_unquoted_tokens(self):
        record = TXT.from_text("v=spf1 -all")
        assert record.strings == ("v=spf1", "-all")

    def test_unterminated_quote(self):
        with pytest.raises(RdataError):
            TXT.from_text('"unclosed')

    def test_truncated_wire(self):
        with pytest.raises(RdataError):
            TXT.from_wire(b"\x05ab")

    def test_empty_wire(self):
        with pytest.raises(RdataError):
            TXT.from_wire(b"")


class TestRegistry:
    def test_all_types_registered(self):
        for code in (
            RRType.A,
            RRType.AAAA,
            RRType.NS,
            RRType.CNAME,
            RRType.PTR,
            RRType.SOA,
            RRType.MX,
            RRType.TXT,
        ):
            assert code in RDATA_CLASSES

    def test_rdata_from_text_by_name(self):
        record = rdata_from_text("A", "192.0.2.7")
        assert isinstance(record, A)

    def test_rdata_from_text_by_code(self):
        record = rdata_from_text(RRType.TXT, '"hello"')
        assert isinstance(record, TXT)

    def test_rdata_from_wire_dispatch(self):
        record = rdata_from_wire(RRType.A, bytes([192, 0, 2, 1]))
        assert record == A("192.0.2.1")

    def test_unknown_type_rejected(self):
        with pytest.raises(RdataError):
            rdata_from_text(999, "data")

    def test_rrtype_names(self):
        assert RRType.to_text(RRType.A) == "A"
        assert RRType.to_text(999) == "TYPE999"
        assert RRType.from_text("TYPE999") == 999
        with pytest.raises(RdataError):
            RRType.from_text("BOGUS")


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_a_wire_roundtrip_any_address(value):
    raw = value.to_bytes(4, "big")
    record = A.from_wire(raw)
    assert record.to_wire() == raw


@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=0,
            max_size=80,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_txt_wire_roundtrip(strings):
    record = TXT(tuple(strings))
    assert TXT.from_wire(record.to_wire()) == record
