"""Property tests: zone-file rendering and parsing are inverse."""

from hypothesis import given, settings, strategies as st

from repro.dns.name import Name
from repro.dns.rdata import A, MX, NS, TXT
from repro.dns.zone import Zone
from repro.dns.zonefile import parse_zone, render_zone

_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
_hostname = st.lists(_label, min_size=2, max_size=4).map(Name)
_ipv4 = st.integers(min_value=1, max_value=0xDFFFFFFF).map(
    lambda value: A.from_wire(value.to_bytes(4, "big"))
)
_txt_value = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters='"\\'
    ),
    min_size=1,
    max_size=60,
).map(lambda value: TXT((value,)))
_rdata = st.one_of(
    _ipv4,
    _txt_value,
    _hostname.map(NS),
    st.tuples(st.integers(0, 100), _hostname).map(
        lambda pair: MX(pair[0], pair[1])
    ),
)


@st.composite
def zones(draw):
    origin = draw(_hostname)
    zone = Zone(origin)
    count = draw(st.integers(min_value=1, max_value=8))
    for _ in range(count):
        sub = draw(_label)
        rdata = draw(_rdata)
        ttl = draw(st.integers(min_value=1, max_value=86400))
        try:
            zone.add(origin.prepend(sub), rdata, ttl)
        except Exception:
            pass  # CNAME-style conflicts can't happen with these types
    if not len(zone):
        zone.add(origin, A("192.0.2.1"))
    return zone


@given(zones())
@settings(max_examples=100, deadline=None)
def test_render_parse_roundtrip(zone):
    clone = parse_zone(render_zone(zone))
    assert clone.origin == zone.origin
    assert len(clone) == len(zone)
    original = {
        (record.owner, record.rrtype, record.rdata, record.ttl)
        for record in zone.records()
    }
    parsed = {
        (record.owner, record.rrtype, record.rdata, record.ttl)
        for record in clone.records()
    }
    assert parsed == original


@given(zones())
@settings(max_examples=50, deadline=None)
def test_render_is_deterministic(zone):
    assert render_zone(zone) == render_zone(zone)
