"""Tests for repro.hosting.policy."""

import pytest

from repro.hosting.policy import (
    HostingPolicy,
    NsAllocation,
    VerificationMode,
)


class TestVerificationMode:
    def test_permissive_modes_allow_urs(self):
        assert not VerificationMode.NONE.blocks_urs
        assert not VerificationMode.NOTIFY_ONLY.blocks_urs

    def test_mitigations_block_urs(self):
        assert VerificationMode.REQUIRE_DELEGATION.blocks_urs
        assert VerificationMode.REQUIRE_TXT_CHALLENGE.blocks_urs


class TestPolicyValidation:
    def test_default_policy_is_permissive(self):
        policy = HostingPolicy()
        assert policy.hosts_without_verification
        assert policy.ns_allocation is NsAllocation.GLOBAL_FIXED

    def test_pool_must_cover_allocation(self):
        with pytest.raises(ValueError):
            HostingPolicy(nameservers_per_zone=4, pool_size=2)

    def test_at_least_one_nameserver(self):
        with pytest.raises(ValueError):
            HostingPolicy(nameservers_per_zone=0, pool_size=2)

    def test_blocking_verification_flips_table2_column(self):
        policy = HostingPolicy(
            verification=VerificationMode.REQUIRE_DELEGATION
        )
        assert not policy.hosts_without_verification


class TestReservedList:
    def test_exact_match(self):
        policy = HostingPolicy(reserved=frozenset({"google.com"}))
        assert policy.is_reserved("google.com")

    def test_subdomain_of_reserved(self):
        policy = HostingPolicy(reserved=frozenset({"google.com"}))
        assert policy.is_reserved("mail.google.com")

    def test_unrelated_domain(self):
        policy = HostingPolicy(reserved=frozenset({"google.com"}))
        assert not policy.is_reserved("example.com")

    def test_similar_name_not_reserved(self):
        policy = HostingPolicy(reserved=frozenset({"google.com"}))
        assert not policy.is_reserved("notgoogle.com")

    def test_empty_reserved(self):
        assert not HostingPolicy().is_reserved("google.com")

    def test_case_insensitive(self):
        policy = HostingPolicy(reserved=frozenset({"google.com"}))
        assert policy.is_reserved("GOOGLE.COM")
