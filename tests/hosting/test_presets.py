"""Tests for repro.hosting.presets: the Table 2 provider matrix."""

import random

import pytest

from repro.hosting.policy import NsAllocation, VerificationMode
from repro.hosting.presets import (
    COMMON_RESERVED,
    EXPANDED_RESERVED,
    HEADLINE_BUILDERS,
    TABLE2_PROVIDERS,
    build_headline_providers,
    make_alibaba,
    make_amazon,
    make_cloudflare,
    make_cloudns,
    make_longtail_provider,
    make_namecheap,
    make_tencent,
)
from repro.net.address import PrefixPlanner
from repro.net.network import SimulatedInternet


@pytest.fixture
def env():
    return SimulatedInternet(), PrefixPlanner()


class TestTable2Matrix:
    """Each provider preset matches its Table 2 row."""

    def test_cloudflare(self, env):
        network, planner = env
        provider = make_cloudflare(network, planner.pool("cf"))
        policy = provider.policy
        assert policy.ns_allocation is NsAllocation.ACCOUNT_FIXED
        assert policy.hosts_without_verification
        assert not policy.allows_unregistered
        assert policy.allows_subdomains and policy.subdomains_require_payment
        assert policy.allows_sld and policy.allows_etld
        assert not policy.duplicates_single_user
        assert policy.duplicates_cross_user
        assert policy.supports_retrieval  # "No retrieval" column is ✘

    def test_amazon(self, env):
        network, planner = env
        provider = make_amazon(network, planner.pool("aws"))
        policy = provider.policy
        assert policy.ns_allocation is NsAllocation.RANDOM
        assert policy.nameservers_per_zone == 4
        assert policy.hosts_without_verification
        assert policy.allows_unregistered
        assert policy.allows_subdomains
        assert policy.duplicates_single_user
        assert policy.duplicates_cross_user
        assert not policy.supports_retrieval
        assert policy.exhaustible_pool

    def test_cloudns(self, env):
        network, planner = env
        provider = make_cloudns(network, planner.pool("cd"))
        policy = provider.policy
        assert policy.ns_allocation is NsAllocation.GLOBAL_FIXED
        assert policy.allows_unregistered
        assert policy.allows_subdomains
        assert not policy.supports_retrieval
        assert policy.protective_records

    def test_tencent_pre_and_post_disclosure(self, env):
        network, planner = env
        before = make_tencent(network, planner.pool("t1"))
        assert before.policy.hosts_without_verification
        after = make_tencent(
            network, planner.pool("t2"), post_disclosure=True
        )
        assert (
            after.policy.verification
            is VerificationMode.REQUIRE_DELEGATION
        )
        assert not after.policy.hosts_without_verification

    def test_alibaba_post_disclosure_txt_challenge(self, env):
        network, planner = env
        after = make_alibaba(
            network, planner.pool("ali"), post_disclosure=True
        )
        assert (
            after.policy.verification
            is VerificationMode.REQUIRE_TXT_CHALLENGE
        )

    def test_alibaba_serves_fleet_wide(self, env):
        network, planner = env
        provider = make_alibaba(network, planner.pool("ali"))
        assert provider.policy.serves_fleet_wide

    def test_cloudflare_expanded_blacklist(self, env):
        network, planner = env
        provider = make_cloudflare(
            network, planner.pool("cf"), post_disclosure=True
        )
        assert provider.policy.is_reserved("speedtest.net")
        assert provider.policy.is_reserved("github.com")

    def test_namecheap_serves_whole_pool(self, env):
        network, planner = env
        provider = make_namecheap(network, planner.pool("nc"))
        assert provider.policy.nameservers_per_zone == len(provider.pool)

    def test_reserved_sets(self):
        assert COMMON_RESERVED < EXPANDED_RESERVED
        assert "speedtest.net" in EXPANDED_RESERVED


class TestBuilders:
    def test_build_all_headline_providers(self, env):
        network, planner = env
        providers = build_headline_providers(network, planner)
        assert set(TABLE2_PROVIDERS) <= set(providers)
        # Every pool nameserver is registered on the network.
        for provider in providers.values():
            for entry in provider.pool:
                assert network.knows(entry.address)

    def test_each_provider_has_unique_pool(self, env):
        network, planner = env
        providers = build_headline_providers(network, planner)
        all_addresses = [
            entry.address
            for provider in providers.values()
            for entry in provider.pool
        ]
        assert len(all_addresses) == len(set(all_addresses))

    def test_longtail_deterministic(self, env):
        network, planner = env
        first = make_longtail_provider(
            1, network, planner.pool("lt1"), random.Random(3)
        )
        network2, planner2 = SimulatedInternet(), PrefixPlanner()
        second = make_longtail_provider(
            1, network2, planner2.pool("lt1"), random.Random(3)
        )
        assert first.policy == second.policy

    def test_longtail_pool_covers_allocation(self, env):
        network, planner = env
        rng = random.Random(0)
        for index in range(20):
            provider = make_longtail_provider(
                index, network, planner.pool(f"lt{index}"), rng
            )
            assert (
                provider.policy.pool_size
                >= provider.policy.nameservers_per_zone
            )
