"""Edge-case tests for the hosting provider: allocation wrap-around,
eTLD namespace shadowing, and the Amazon exhaustion attack end to end."""

import random

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdata import RRType
from repro.hosting.policy import HostingPolicy, NsAllocation
from repro.hosting.provider import HostingError, HostingProvider
from repro.net.address import PrefixPlanner
from repro.net.network import SimulatedInternet


def make_provider(policy, provider_name="EdgeHost"):
    network = SimulatedInternet()
    planner = PrefixPlanner()
    provider = HostingProvider(
        provider_name,
        policy,
        network,
        planner.pool(provider_name),
        rng=random.Random(8),
    )
    return network, provider


class TestAccountFixedWraparound:
    def test_many_accounts_reuse_pool_cyclically(self):
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=4,
            )
        )
        accounts = [provider.create_account() for _ in range(6)]
        sets = [
            tuple(
                entry.address for entry in account.fixed_nameservers
            )
            for account in accounts
        ]
        # With a pool of 4 and pairs of 2, sets repeat with period 2.
        assert sets[0] == sets[2] == sets[4]
        assert sets[1] == sets[3] == sets[5]
        assert sets[0] != sets[1]


class TestEtldShadowing:
    def test_etld_zone_answers_for_every_child(self):
        """Hosting gov.cn lets the attacker answer for *any* name under
        it — the government-namespace shadowing Appendix C warns about."""
        network, provider = make_provider(HostingPolicy(allows_etld=True))
        hosted = provider.host_zone(
            provider.create_account(), "gov.cn", is_registered=True
        )
        provider.add_record(hosted, "*.gov.cn", "A", "203.0.113.66")
        response = network.query_dns(
            "10.9.9.9",
            hosted.nameserver_addresses()[0],
            Message.make_query(
                "portal.beijing.gov.cn", RRType.A, recursion_desired=False
            ),
        )
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers[0].rdata.address == "203.0.113.66"


class TestAmazonExhaustionAttack:
    def test_api_loop_starves_legitimate_owner(self):
        """Appendix C: an attacker repeatedly hosting the same domain via
        the API exhausts the random pool; afterwards even the legitimate
        owner cannot create a zone."""
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.RANDOM,
                nameservers_per_zone=4,
                pool_size=12,
                duplicates_single_user=True,
                duplicates_cross_user=True,
                exhaustible_pool=True,
            )
        )
        attacker = provider.create_account()
        created = 0
        while True:
            try:
                provider.host_zone(
                    attacker, "victim.com", is_registered=True
                )
                created += 1
            except HostingError:
                break
        assert created == 3  # 12-server pool / 4 per zone
        owner = provider.create_account()
        with pytest.raises(HostingError):
            provider.host_zone(owner, "victim.com", is_registered=True)


class TestDeleteRestoresEarlierZone:
    def test_contested_server_falls_back_after_delete(self):
        network, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.GLOBAL_FIXED,
                nameservers_per_zone=2,
                pool_size=2,
                duplicates_cross_user=True,
            )
        )
        first = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(first, "victim.com", "A", "1.1.1.1")
        second = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(second, "victim.com", "A", "2.2.2.2")
        # Global-fixed: the second zone shadowed the first on the shared
        # servers; deleting it must bring the first back.
        provider.delete_zone(second)
        response = network.query_dns(
            "10.9.9.9",
            first.nameserver_addresses()[0],
            Message.make_query("victim.com", RRType.A),
        )
        assert response.answers[0].rdata.address == "1.1.1.1"
