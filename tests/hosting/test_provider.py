"""Tests for repro.hosting.provider: policy enforcement and serving."""

import random

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.hosting.policy import (
    HostingPolicy,
    NsAllocation,
    VerificationMode,
)
from repro.hosting.provider import HostingError, HostingProvider
from repro.net.address import PrefixPlanner
from repro.net.network import SimulatedInternet


def make_provider(policy=None, pool_blocks=1, provider_name="TestHost"):
    network = SimulatedInternet()
    planner = PrefixPlanner()
    provider = HostingProvider(
        provider_name,
        policy or HostingPolicy(),
        network,
        planner.pool(provider_name, blocks=pool_blocks),
        rng=random.Random(5),
    )
    return network, provider


def query(network, server_ip, domain, qtype=RRType.A):
    message = Message.make_query(domain, qtype, recursion_desired=False)
    return network.query_dns("198.51.100.9", server_ip, message)


class TestHosting:
    def test_host_and_serve(self):
        network, provider = make_provider()
        account = provider.create_account()
        hosted = provider.host_zone(account, "victim.com", is_registered=True)
        provider.add_record(hosted, "victim.com", "A", "203.0.113.1")
        response = query(
            network, hosted.nameserver_addresses()[0], "victim.com"
        )
        assert response.header.rcode == Rcode.NOERROR
        assert response.answers[0].rdata.address == "203.0.113.1"

    def test_zone_gets_soa_and_ns(self):
        _, provider = make_provider()
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        assert hosted.zone.rrset("victim.com", RRType.SOA)
        assert len(hosted.zone.rrset("victim.com", RRType.NS)) == len(
            hosted.nameservers
        )

    def test_remove_record(self):
        _, provider = make_provider()
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(hosted, "victim.com", "A", "203.0.113.1")
        assert provider.remove_record(hosted, "victim.com", RRType.A) == 1

    def test_delete_zone_stops_serving(self):
        network, provider = make_provider()
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        address = hosted.nameserver_addresses()[0]
        provider.delete_zone(hosted)
        response = query(network, address, "victim.com")
        assert response.header.rcode == Rcode.REFUSED
        assert provider.hosted_zones("victim.com") == []


class TestDomainTypePolicy:
    def test_reserved_domain_refused(self):
        _, provider = make_provider(
            HostingPolicy(reserved=frozenset({"google.com"}))
        )
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(), "google.com", is_registered=True
            )

    def test_etld_refused_when_disallowed(self):
        _, provider = make_provider(HostingPolicy(allows_etld=False))
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(), "gov.cn", is_registered=True
            )

    def test_etld_allowed_by_default(self):
        _, provider = make_provider()
        hosted = provider.host_zone(
            provider.create_account(), "gov.cn", is_registered=True
        )
        assert hosted.domain == name("gov.cn")

    def test_subdomain_refused_when_disallowed(self):
        _, provider = make_provider(HostingPolicy(allows_subdomains=False))
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(),
                "api.victim.com",
                is_registered=True,
            )

    def test_subdomain_requires_payment(self):
        _, provider = make_provider(
            HostingPolicy(
                allows_subdomains=True, subdomains_require_payment=True
            )
        )
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(paid=False),
                "api.victim.com",
                is_registered=True,
            )
        hosted = provider.host_zone(
            provider.create_account(paid=True),
            "api.victim.com",
            is_registered=True,
        )
        assert hosted.domain == name("api.victim.com")

    def test_unregistered_refused_when_disallowed(self):
        _, provider = make_provider(
            HostingPolicy(allows_unregistered=False)
        )
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(),
                "brand-new.com",
                is_registered=False,
            )

    def test_unregistered_allowed(self):
        _, provider = make_provider(HostingPolicy(allows_unregistered=True))
        hosted = provider.host_zone(
            provider.create_account(), "brand-new.com", is_registered=False
        )
        assert hosted.domain == name("brand-new.com")

    def test_sld_refused_when_disallowed(self):
        _, provider = make_provider(HostingPolicy(allows_sld=False))
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(), "victim.com", is_registered=True
            )


class TestNsAllocation:
    def test_global_fixed_shares_nameservers(self):
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.GLOBAL_FIXED,
                nameservers_per_zone=2,
                pool_size=4,
            )
        )
        first = provider.host_zone(
            provider.create_account(), "a.com", is_registered=True
        )
        second = provider.host_zone(
            provider.create_account(), "b.com", is_registered=True
        )
        assert first.nameserver_addresses() == second.nameserver_addresses()

    def test_account_fixed_varies_by_account(self):
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=8,
            )
        )
        account_a = provider.create_account()
        account_b = provider.create_account()
        zone_a = provider.host_zone(account_a, "a.com", is_registered=True)
        zone_a2 = provider.host_zone(account_a, "a2.com", is_registered=True)
        zone_b = provider.host_zone(account_b, "b.com", is_registered=True)
        assert zone_a.nameserver_addresses() == zone_a2.nameserver_addresses()
        assert zone_a.nameserver_addresses() != zone_b.nameserver_addresses()

    def test_account_fixed_disjoint_for_same_domain(self):
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=8,
                duplicates_cross_user=True,
            )
        )
        zone_a = provider.host_zone(
            provider.create_account(), "same.com", is_registered=True
        )
        zone_b = provider.host_zone(
            provider.create_account(), "same.com", is_registered=True
        )
        assert not set(zone_a.nameserver_addresses()) & set(
            zone_b.nameserver_addresses()
        )

    def test_random_allocation_draws_subset(self):
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.RANDOM,
                nameservers_per_zone=4,
                pool_size=20,
            )
        )
        hosted = provider.host_zone(
            provider.create_account(), "a.com", is_registered=True
        )
        assert len(hosted.nameservers) == 4
        assert len(set(hosted.nameserver_addresses())) == 4

    def test_exhaustible_random_pool(self):
        # Amazon-style attack: repeated hosting exhausts the pool.
        _, provider = make_provider(
            HostingPolicy(
                ns_allocation=NsAllocation.RANDOM,
                nameservers_per_zone=4,
                pool_size=8,
                duplicates_single_user=True,
                duplicates_cross_user=True,
                exhaustible_pool=True,
            )
        )
        account = provider.create_account()
        provider.host_zone(account, "same.com", is_registered=True)
        provider.host_zone(account, "same.com", is_registered=True)
        with pytest.raises(HostingError):
            provider.host_zone(account, "same.com", is_registered=True)


class TestDuplicates:
    def test_single_user_duplicate_refused_by_default(self):
        _, provider = make_provider()
        account = provider.create_account()
        provider.host_zone(account, "dup.com", is_registered=True)
        with pytest.raises(HostingError):
            provider.host_zone(account, "dup.com", is_registered=True)

    def test_cross_user_duplicate_refused_by_default(self):
        _, provider = make_provider()
        provider.host_zone(
            provider.create_account(), "dup.com", is_registered=True
        )
        with pytest.raises(HostingError):
            provider.host_zone(
                provider.create_account(), "dup.com", is_registered=True
            )

    def test_cross_user_duplicate_allowed_by_policy(self):
        _, provider = make_provider(
            HostingPolicy(
                duplicates_cross_user=True,
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                pool_size=8,
            )
        )
        provider.host_zone(
            provider.create_account(), "dup.com", is_registered=True
        )
        second = provider.host_zone(
            provider.create_account(), "dup.com", is_registered=True
        )
        assert second.domain == name("dup.com")


class TestVerification:
    def _delegation_provider(self, delegated_targets):
        _, provider = make_provider(
            HostingPolicy(
                verification=VerificationMode.REQUIRE_DELEGATION
            )
        )
        provider.delegation_lookup = lambda domain: delegated_targets(
            provider
        )
        return provider

    def test_unverified_zone_not_served(self):
        provider = self._delegation_provider(lambda p: [])
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        assert not hosted.verified
        assert not any(
            entry.server.hosts_zone("victim.com")
            for entry in provider.pool
        )

    def test_verified_zone_served(self):
        provider = self._delegation_provider(
            lambda p: [entry.hostname for entry in p.pool[:2]]
        )
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        assert hosted.verified
        assert any(
            entry.server.hosts_zone("victim.com")
            for entry in provider.pool
        )

    def test_recheck_after_delegation_change(self):
        state = {"delegated": []}
        _, provider = make_provider(
            HostingPolicy(verification=VerificationMode.REQUIRE_DELEGATION)
        )
        provider.delegation_lookup = lambda domain: state["delegated"]
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        assert not hosted.verified
        state["delegated"] = [hosted.nameservers[0].hostname]
        assert provider.recheck_verification(hosted)
        assert hosted.nameservers[0].server.hosts_zone("victim.com")

    def test_txt_challenge(self):
        _, provider = make_provider(
            HostingPolicy(
                verification=VerificationMode.REQUIRE_TXT_CHALLENGE
            )
        )
        live_txt = {"values": []}
        provider.live_txt_lookup = lambda domain: live_txt["values"]
        account = provider.create_account()
        token = provider.issue_txt_challenge(account, "victim.com")
        hosted = provider.host_zone(account, "victim.com", is_registered=True)
        assert not hosted.verified
        live_txt["values"] = [f"verify {token}"]
        assert provider.recheck_verification(hosted)

    def test_notify_only_serves_anyway(self):
        # The paper's key observation: the portal nags, the NSes answer.
        network, provider = make_provider(
            HostingPolicy(verification=VerificationMode.NOTIFY_ONLY)
        )
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        assert not hosted.verified
        response = query(
            network, hosted.nameserver_addresses()[0], "victim.com",
            RRType.SOA,
        )
        assert response.header.rcode == Rcode.NOERROR


class TestRetrieval:
    def test_retrieval_requires_policy(self):
        _, provider = make_provider(
            HostingPolicy(supports_retrieval=False)
        )
        with pytest.raises(HostingError):
            provider.retrieve_domain(provider.create_account(), "x.com")

    def test_retrieval_requires_proof(self):
        _, provider = make_provider(
            HostingPolicy(supports_retrieval=True)
        )
        provider.delegation_lookup = lambda domain: []
        with pytest.raises(HostingError):
            provider.retrieve_domain(provider.create_account(), "x.com")

    def test_retrieval_evicts_squatter(self):
        _, provider = make_provider(
            HostingPolicy(supports_retrieval=True)
        )
        squatter = provider.create_account()
        squatted = provider.host_zone(squatter, "victim.com", is_registered=True)
        owner = provider.create_account()
        provider.delegation_lookup = lambda domain: [
            entry.hostname for entry in provider.pool[:1]
        ]
        evicted = provider.retrieve_domain(owner, "victim.com")
        assert squatted in evicted
        assert provider.hosted_zones("victim.com") == []


class TestFleetWideServing:
    def test_zone_served_from_whole_pool(self):
        network, provider = make_provider(
            HostingPolicy(
                serves_fleet_wide=True,
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=6,
            )
        )
        hosted = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(hosted, "victim.com", "A", "203.0.113.1")
        for entry in provider.pool:
            response = query(network, entry.address, "victim.com")
            assert response.header.rcode == Rcode.NOERROR

    def test_contested_domain_keeps_assigned_zone(self):
        network, provider = make_provider(
            HostingPolicy(
                serves_fleet_wide=True,
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=6,
                duplicates_cross_user=True,
            )
        )
        owner_zone = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(owner_zone, "victim.com", "A", "1.1.1.1")
        attacker_zone = provider.host_zone(
            provider.create_account(), "victim.com", is_registered=True
        )
        provider.add_record(attacker_zone, "victim.com", "A", "6.6.6.6")
        # Owner's assigned servers still answer with the owner's data.
        owner_ns = owner_zone.nameserver_addresses()[0]
        response = query(network, owner_ns, "victim.com")
        assert response.answers[0].rdata.address == "1.1.1.1"
        # The attacker's assigned servers answer with the UR.
        attacker_ns = attacker_zone.nameserver_addresses()[0]
        response = query(network, attacker_ns, "victim.com")
        assert response.answers[0].rdata.address == "6.6.6.6"


class TestPaidSync:
    def test_sync_requires_policy_and_payment(self):
        _, provider = make_provider(
            HostingPolicy(
                paid_sync_all_nameservers=False, pool_size=4
            )
        )
        hosted = provider.host_zone(
            provider.create_account(paid=True), "v.com", is_registered=True
        )
        with pytest.raises(HostingError):
            provider.sync_all_nameservers(hosted)

    def test_sync_spreads_to_pool(self):
        network, provider = make_provider(
            HostingPolicy(
                paid_sync_all_nameservers=True,
                ns_allocation=NsAllocation.ACCOUNT_FIXED,
                nameservers_per_zone=2,
                pool_size=6,
            )
        )
        free_hosted = provider.host_zone(
            provider.create_account(paid=False), "f.com", is_registered=True
        )
        with pytest.raises(HostingError):
            provider.sync_all_nameservers(free_hosted)
        hosted = provider.host_zone(
            provider.create_account(paid=True), "v.com", is_registered=True
        )
        provider.sync_all_nameservers(hosted)
        assert len(hosted.nameservers) == len(provider.pool)
        for entry in provider.pool:
            assert entry.server.hosts_zone("v.com")
