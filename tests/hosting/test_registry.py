"""Tests for repro.hosting.registry: the delegation tree."""

import pytest

from repro.dns.message import Message
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.dns.resolver import RecursiveResolver
from repro.hosting.registry import DnsRoot, RegistryError
from repro.net.address import PrefixPlanner
from repro.net.network import SimulatedInternet


@pytest.fixture
def network():
    return SimulatedInternet()


@pytest.fixture
def root(network):
    return DnsRoot(network)


class TestTlds:
    def test_ensure_tld_creates_zone_and_server(self, root, network):
        zone = root.ensure_tld("com")
        assert zone.origin == name("com")
        assert name("com") in root.tlds()

    def test_ensure_tld_idempotent(self, root):
        first = root.ensure_tld("com")
        second = root.ensure_tld("com")
        assert first is second

    def test_multi_label_tld_rejected(self, root):
        with pytest.raises(RegistryError):
            root.ensure_tld("co.uk")

    def test_tld_delegated_from_root(self, root, network):
        root.ensure_tld("com")
        resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)
        response = resolver.resolve("com", RRType.NS)
        # TLD server is authoritative for its own NS records.
        assert response.answers

    def test_unknown_tld_zone(self, root):
        with pytest.raises(RegistryError):
            root.tld_zone("nope")


class TestRegistration:
    def test_register(self, root):
        registration = root.register("example.com", "alice")
        assert registration.registrant == "alice"
        assert not registration.is_delegated
        assert root.is_registered("example.com")

    def test_double_registration_rejected(self, root):
        root.register("example.com", "alice")
        with pytest.raises(RegistryError):
            root.register("example.com", "bob")

    def test_register_under_etld(self, root):
        registration = root.register("city.gov.cn", "gov")
        assert registration.domain == name("city.gov.cn")

    def test_cannot_register_tld(self, root):
        with pytest.raises(RegistryError):
            root.register("com", "icann")

    def test_registration_lookup(self, root):
        root.register("example.com", "alice")
        assert root.registration("example.com") is not None
        assert root.registration("other.com") is None


class TestDelegation:
    def test_delegate_and_query(self, root, network):
        root.register("example.com", "alice")
        root.delegate(
            "example.com", [(name("ns1.example.com"), "10.0.0.1")]
        )
        assert root.delegation_of("example.com") == [
            name("ns1.example.com")
        ]
        assert root.delegated_addresses("example.com") == ["10.0.0.1"]

    def test_delegate_unregistered_rejected(self, root):
        with pytest.raises(RegistryError):
            root.delegate("nope.com", [(name("ns1.x.com"), "10.0.0.1")])

    def test_redelegation_replaces(self, root):
        root.register("example.com", "alice")
        root.delegate("example.com", [(name("ns1.old.net"), "10.0.0.1")])
        root.delegate("example.com", [(name("ns1.new.net"), "10.0.0.2")])
        assert root.delegation_of("example.com") == [name("ns1.new.net")]

    def test_undelegate(self, root):
        root.register("example.com", "alice")
        root.delegate("example.com", [(name("ns1.x.net"), "10.0.0.1")])
        root.undelegate("example.com")
        assert root.delegation_of("example.com") == []
        assert root.is_registered("example.com")

    def test_undelegate_unregistered_rejected(self, root):
        with pytest.raises(RegistryError):
            root.undelegate("nope.com")

    def test_delegation_of_unregistered_is_empty(self, root):
        assert root.delegation_of("nope.com") == []

    def test_tld_referral_contains_delegation(self, root, network):
        root.register("example.com", "alice")
        root.delegate(
            "example.com", [(name("ns1.example.com"), "10.0.0.1")]
        )
        tld_address = root._tld_addresses[name("com")]
        query = Message.make_query(
            "www.example.com", RRType.A, recursion_desired=False
        )
        response = network.query_dns("9.9.9.9", tld_address, query)
        assert response.is_referral()
        # In-bailiwick target carries glue.
        assert response.glue_address("ns1.example.com") == "10.0.0.1"


class TestConnectProvider:
    def test_provider_ns_domain_resolvable(self, network, root):
        from repro.hosting.presets import make_godaddy

        planner = PrefixPlanner()
        provider = make_godaddy(network, planner.pool("gd"))
        root.connect_provider(provider)
        resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)
        first_ns = provider.pool[0]
        addresses = resolver.lookup_a(first_ns.hostname)
        assert addresses == [first_ns.address]

    def test_glueless_customer_delegation_resolves(self, network, root):
        from repro.hosting.presets import make_godaddy

        planner = PrefixPlanner()
        provider = make_godaddy(network, planner.pool("gd"))
        root.connect_provider(provider)
        account = provider.create_account()
        hosted = provider.host_zone(account, "customer.org", is_registered=True)
        provider.add_record(hosted, "customer.org", "A", "198.51.100.5")
        root.register("customer.org", "bob")
        root.delegate(
            "customer.org", provider.nameserver_set_for_delegation(hosted)
        )
        resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)
        assert resolver.lookup_a("customer.org") == ["198.51.100.5"]
