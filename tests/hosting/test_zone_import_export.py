"""Tests for provider zone import/export (portal upload/download)."""

import random

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.rdata import RRType
from repro.dns.zonefile import ZoneFileError
from repro.hosting.policy import HostingPolicy
from repro.hosting.provider import HostingError, HostingProvider
from repro.net.address import PrefixPlanner
from repro.net.network import SimulatedInternet


@pytest.fixture
def provider():
    network = SimulatedInternet()
    planner = PrefixPlanner()
    built = HostingProvider(
        "PortalHost",
        HostingPolicy(allows_subdomains=True),
        network,
        planner.pool("portal"),
        rng=random.Random(4),
    )
    return network, built


UPLOAD = """\
$ORIGIN victim.com.
$TTL 120
@ IN A 203.0.113.9
www IN CNAME victim.com.
@ IN TXT "v=spf1 ip4:203.0.113.9 -all"
; the provider must ignore these:
@ IN NS ns1.attacker-controlled.net.
@ IN SOA ns1.attacker-controlled.net. evil.attacker.net. 1 2 3 4 5
"""


class TestImport:
    def test_records_imported_and_served(self, provider):
        network, host = provider
        account = host.create_account()
        hosted = host.import_zone(account, UPLOAD, is_registered=True)
        response = network.query_dns(
            "10.9.9.9",
            hosted.nameserver_addresses()[0],
            Message.make_query("victim.com", RRType.A),
        )
        assert response.answers[0].rdata.address == "203.0.113.9"

    def test_file_ttls_preserved(self, provider):
        _, host = provider
        hosted = host.import_zone(
            host.create_account(), UPLOAD, is_registered=True
        )
        (a_record,) = hosted.zone.rrset("victim.com", RRType.A)
        assert a_record.ttl == 120

    def test_soa_and_ns_from_file_ignored(self, provider):
        _, host = provider
        hosted = host.import_zone(
            host.create_account(), UPLOAD, is_registered=True
        )
        ns_targets = [str(target) for target in hosted.zone.nameserver_targets()]
        assert all("attacker" not in target for target in ns_targets)
        (soa,) = hosted.zone.rrset("victim.com", RRType.SOA)
        assert "attacker" not in soa.rdata.mname.to_text()

    def test_policy_still_enforced(self, provider):
        _, host = provider
        upload = "$ORIGIN brand-new.org.\n@ IN A 1.2.3.4\n"
        with pytest.raises(HostingError):
            host.import_zone(
                host.create_account(), upload, is_registered=False
            )

    def test_bad_file_rejected(self, provider):
        _, host = provider
        with pytest.raises(ZoneFileError):
            host.import_zone(host.create_account(), "@ IN A 1.2.3.4\n")


class TestExport:
    def test_export_roundtrips_through_import(self, provider):
        _, host = provider
        account = host.create_account()
        hosted = host.host_zone(account, "victim.com", is_registered=True)
        host.add_record(hosted, "victim.com", "A", "203.0.113.9")
        host.add_record(hosted, "www.victim.com", "A", "203.0.113.9")
        exported = host.export_zone(hosted)
        assert "$ORIGIN victim.com." in exported
        assert "203.0.113.9" in exported

        other_account = host.create_account()
        clone = host.import_zone(
            other_account,
            exported.replace("victim.com", "victim-copy.com"),
            is_registered=True,
        )
        assert clone.zone.rrset("victim-copy.com", RRType.A)
