"""Tests for repro.sandbox.ids and repro.sandbox.rules."""

import pytest

from repro.net.traffic import FlowRecord, Protocol, TrafficCapture
from repro.sandbox.ids import (
    Alert,
    AlertCategory,
    IdsEngine,
    IdsRule,
    Severity,
    all_of,
    any_of,
    payload_contains,
    port_is,
    protocol_is,
)
from repro.sandbox.rules import (
    SCAN_THRESHOLD,
    default_capture_rules,
    default_rules,
)


def flow(payload=b"", port=80, protocol=Protocol.TCP, dst="6.6.6.6"):
    return FlowRecord(
        timestamp=1.0,
        src="10.0.0.1",
        dst=dst,
        protocol=protocol,
        dst_port=port,
        metadata={"payload": payload},
    )


def capture_of(*flows):
    capture = TrafficCapture()
    capture.extend(flows)
    return capture


class TestPredicates:
    def test_payload_contains(self):
        predicate = payload_contains(b"EVIL", b"BAD")
        assert predicate(flow(payload=b"xx EVIL xx"))
        assert predicate(flow(payload=b"BAD"))
        assert not predicate(flow(payload=b"ok"))

    def test_payload_missing_metadata(self):
        bare = FlowRecord(
            timestamp=1.0,
            src="a",
            dst="b",
            protocol=Protocol.TCP,
            dst_port=80,
        )
        assert not payload_contains(b"EVIL")(bare)

    def test_port_is(self):
        assert port_is(80, 443)(flow(port=443))
        assert not port_is(80)(flow(port=8080))

    def test_protocol_is(self):
        assert protocol_is(Protocol.SMTP)(flow(protocol=Protocol.SMTP))

    def test_combinators(self):
        both = all_of(port_is(25), protocol_is(Protocol.SMTP))
        assert both(flow(port=25, protocol=Protocol.SMTP))
        assert not both(flow(port=25))
        either = any_of(port_is(25), port_is(80))
        assert either(flow(port=80))


class TestEngine:
    def _engine(self):
        return IdsEngine(
            [
                IdsRule(
                    sid=1,
                    message="evil payload",
                    category=AlertCategory.TROJAN,
                    severity=Severity.HIGH,
                    predicate=payload_contains(b"EVIL"),
                ),
                IdsRule(
                    sid=2,
                    message="conn check",
                    category=AlertCategory.CONNECTIVITY,
                    severity=Severity.LOW,
                    predicate=payload_contains(b"generate_204"),
                ),
            ]
        )

    def test_matching_flow_alerts(self):
        alerts = self._engine().inspect(capture_of(flow(payload=b"EVIL")))
        assert len(alerts) == 1
        assert alerts[0].sid == 1
        assert alerts[0].dst == "6.6.6.6"

    def test_non_matching_flow_silent(self):
        assert self._engine().inspect(capture_of(flow(payload=b"hi"))) == []

    def test_dns_flows_never_alerted(self):
        dns_flow = FlowRecord(
            timestamp=1.0,
            src="a",
            dst="b",
            protocol=Protocol.DNS,
            dst_port=53,
            metadata={"payload": b"EVIL"},
        )
        assert self._engine().inspect(capture_of(dns_flow)) == []

    def test_duplicate_sid_rejected(self):
        rule = IdsRule(
            sid=1,
            message="x",
            category=AlertCategory.OTHER,
            severity=Severity.LOW,
            predicate=port_is(1),
        )
        with pytest.raises(ValueError):
            IdsEngine([rule, rule])

    def test_actionable_filters_low_and_connectivity(self):
        engine = self._engine()
        alerts = engine.inspect(
            capture_of(
                flow(payload=b"EVIL"), flow(payload=b"GET /generate_204")
            )
        )
        assert len(alerts) == 2
        actionable = IdsEngine.actionable(alerts)
        assert len(actionable) == 1
        assert actionable[0].category == AlertCategory.TROJAN

    def test_alert_describe(self):
        alerts = self._engine().inspect(capture_of(flow(payload=b"EVIL")))
        text = alerts[0].describe()
        assert "HIGH" in text and "Trojan" in text


class TestDefaultRules:
    def setup_method(self):
        self.engine = IdsEngine(default_rules(), default_capture_rules())

    def _categories(self, *flows):
        return [alert.category for alert in self.engine.inspect(capture_of(*flows))]

    def test_trojan_beacon(self):
        categories = self._categories(flow(payload=b"POST /gate.php HTTP/1.1"))
        assert AlertCategory.TROJAN in categories

    def test_rat_heartbeat(self):
        categories = self._categories(flow(payload=b"SPECTER-HELLO id=1"))
        assert AlertCategory.CC in categories

    def test_exfil_marker(self):
        categories = self._categories(flow(payload=b"EXFIL-BEGIN chunk"))
        assert AlertCategory.PRIVACY in categories

    def test_smtp_covert_channel(self):
        categories = self._categories(
            flow(
                payload=b"X-Covert-Channel: v1",
                port=25,
                protocol=Protocol.SMTP,
            )
        )
        assert AlertCategory.TROJAN in categories

    def test_c2_port_heuristic(self):
        categories = self._categories(flow(payload=b"anything", port=4444))
        assert AlertCategory.CC in categories

    def test_port_zero_bad_traffic(self):
        categories = self._categories(flow(payload=b"\x00", port=0))
        assert AlertCategory.BAD_TRAFFIC in categories

    def test_connectivity_check_low_severity(self):
        alerts = self.engine.inspect(
            capture_of(flow(payload=b"GET /generate_204 HTTP/1.1"))
        )
        assert alerts[0].severity is Severity.LOW
        assert IdsEngine.actionable(alerts) == []

    def test_smb_probe(self):
        categories = self._categories(flow(payload=b"\x00probe", port=445))
        assert AlertCategory.OTHER in categories

    def test_scan_detector_fires_at_threshold(self):
        flows = [
            flow(payload=b"syn", port=445, dst=f"10.1.1.{index}")
            for index in range(SCAN_THRESHOLD)
        ]
        alerts = self.engine.inspect(capture_of(*flows))
        assert any("port scan" in alert.message for alert in alerts)

    def test_scan_detector_quiet_below_threshold(self):
        flows = [
            flow(payload=b"syn", port=9999, dst=f"10.1.1.{index}")
            for index in range(SCAN_THRESHOLD - 1)
        ]
        alerts = self.engine.inspect(capture_of(*flows))
        assert not any("port scan" in alert.message for alert in alerts)

    def test_benign_traffic_clean(self):
        alerts = self.engine.inspect(
            capture_of(flow(payload=b"GET / HTTP/1.1\r\nHost: x\r\n"))
        )
        assert IdsEngine.actionable(alerts) == []


class TestSeverity:
    def test_ordering(self):
        assert Severity.LOW < Severity.MEDIUM < Severity.HIGH
