"""Tests for repro.sandbox.families: each malware family's behaviour."""

import pytest

from repro.dns.server import AuthoritativeServer
from repro.dns.zone import zone_from_records
from repro.net.network import SimulatedInternet
from repro.net.traffic import Protocol
from repro.sandbox.families import (
    UrTarget,
    extract_spf_ips,
    make_benign_updater,
    make_darkiot_2021_variants,
    make_darkiot_2023_variant,
    make_generic_badtraffic,
    make_generic_c2,
    make_generic_exfil,
    make_generic_scanner,
    make_generic_trojan,
    make_micropsia_samples,
    make_specter_variants,
    make_tesla_samples,
)
from repro.sandbox.ids import AlertCategory
from repro.sandbox.sandbox import Sandbox

C2_IP = "203.0.113.77"
UR_NS = "10.0.0.1"
EMER_NS = "10.0.0.2"


class _C2:
    def handle_tcp_connect(self, src, port, payload, network):
        if payload.startswith(b"EHLO"):
            return b"250 OK"
        return b"TASK"


@pytest.fixture
def world():
    network = SimulatedInternet()
    ur_server = AuthoritativeServer("ns1.cloudns.sim")
    for domain in (
        "api.gitlab.com",
        "raw.pastebin.com",
        "ibm.com",
        "api.github.com",
        "dark.libre",
        "trusted.com",
    ):
        ur_server.load_zone(
            zone_from_records(domain, [(domain, "A", C2_IP)])
        )
    spf = (
        "v=spf1 ip4:203.0.113.77 ip4:203.0.113.78 ip4:203.0.113.79 -all"
    )
    ur_server.load_zone(
        zone_from_records(
            "speedtest.net", [("speedtest.net", "TXT", f'"{spf}"')]
        )
    )
    network.register_dns_host(UR_NS, ur_server)

    emer_server = AuthoritativeServer("dns.emercoin.sim")
    emer_server.load_zone(
        zone_from_records("dark.libre", [("dark.libre", "A", C2_IP)])
    )
    network.register_dns_host(EMER_NS, emer_server)

    for address in (C2_IP, "203.0.113.78", "203.0.113.79"):
        network.register_tcp_host(address, _C2())
    return network


@pytest.fixture
def sandbox(world):
    return Sandbox(world, victim_ip="10.99.0.1")


def ur(domain, nameservers=(UR_NS,)):
    return UrTarget(domain=domain, nameserver_ips=list(nameservers))


class TestSpfExtraction:
    def test_extracts_ip4_mechanisms(self):
        ips = extract_spf_ips(["v=spf1 ip4:1.2.3.4 ip4:5.6.7.8 -all"])
        assert ips == ["1.2.3.4", "5.6.7.8"]

    def test_empty_for_non_spf(self):
        assert extract_spf_ips(["hello world"]) == []


class TestDarkIot:
    def test_2021_variants_use_gitlab_ur(self, sandbox):
        samples = make_darkiot_2021_variants(ur("api.gitlab.com"), EMER_NS)
        assert len(samples) == 2
        report = sandbox.run(samples[0])
        assert "api.gitlab.com" in report.dns_queries()
        assert C2_IP in report.contacted_ips()
        assert report.actionable_alerts

    def test_2021_falls_back_to_emerdns(self, world):
        # Kill the UR path: samples must use the EmerDNS OpenNIC domain.
        world.set_online(UR_NS, False)
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        samples = make_darkiot_2021_variants(ur("api.gitlab.com"), EMER_NS)
        report = sandbox.run(samples[0])
        assert EMER_NS in report.queried_nameservers()
        assert C2_IP in report.contacted_ips()
        assert any("EmerDNS" in note for note in report.notes)

    def test_2023_variant_abandons_emerdns(self, sandbox):
        sample = make_darkiot_2023_variant(
            ur("raw.pastebin.com"), ur("dark.libre")
        )
        report = sandbox.run(sample)
        assert EMER_NS not in report.queried_nameservers()
        assert C2_IP in report.contacted_ips()

    def test_2023_opennic_via_cloudns_when_pastebin_gone(self, world):
        # Remove the pastebin zone; the OpenNIC UR on the same provider
        # must take over (the paper's observed shift).
        server = world.dns_hosts()[UR_NS]
        server.unload_zone("raw.pastebin.com")
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        sample = make_darkiot_2023_variant(
            ur("raw.pastebin.com"), ur("dark.libre")
        )
        report = sandbox.run(sample)
        assert C2_IP in report.contacted_ips()
        assert any("EmerDNS abandoned" in note for note in report.notes)

    def test_dormant_without_any_c2(self, world):
        server = world.dns_hosts()[UR_NS]
        server.unload_zone("raw.pastebin.com")
        server.unload_zone("dark.libre")
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        report = sandbox.run(
            make_darkiot_2023_variant(ur("raw.pastebin.com"), ur("dark.libre"))
        )
        assert report.contacted_ips() == set()
        assert any("dormant" in note for note in report.notes)


class TestSpecter:
    def test_three_variants_undetected(self):
        samples = make_specter_variants(ur("ibm.com"), ur("api.github.com"))
        assert len(samples) == 3
        assert all(s.vendor_detections == 0 for s in samples)

    def test_c2_alerts(self, sandbox):
        samples = make_specter_variants(ur("ibm.com"), ur("api.github.com"))
        for sample in samples:
            report = sandbox.run(sample)
            categories = [a.category for a in report.actionable_alerts]
            assert AlertCategory.CC in categories


class TestSpfCampaign:
    def test_micropsia_reads_spf_and_beacons(self, sandbox):
        samples = make_micropsia_samples(ur("speedtest.net"))
        report = sandbox.run(samples[0])
        assert C2_IP in report.contacted_ips()
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.CC in categories

    def test_tesla_smtp_covert_channel(self, sandbox):
        samples = make_tesla_samples(ur("speedtest.net"), count=3, detected=2)
        report = sandbox.run(samples[0])
        smtp_flows = report.capture.filter(protocol=Protocol.SMTP)
        assert smtp_flows
        assert report.actionable_alerts

    def test_tesla_detection_split(self):
        samples = make_tesla_samples(ur("speedtest.net"), count=3, detected=2)
        detected = [s for s in samples if s.vendor_detections > 0]
        assert len(detected) == 2
        assert any(not s.labels for s in samples)

    def test_dormant_without_spf(self, world):
        world.dns_hosts()[UR_NS].unload_zone("speedtest.net")
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        report = sandbox.run(make_micropsia_samples(ur("speedtest.net"))[0])
        assert report.contacted_ips() == set()


class TestGenericFamilies:
    def test_trojan(self, sandbox):
        report = sandbox.run(make_generic_trojan(1, ur("trusted.com")))
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.TROJAN in categories

    def test_scanner_sweeps_and_reports(self, sandbox):
        report = sandbox.run(
            make_generic_scanner(1, ur("trusted.com"), sweep_size=10)
        )
        # The sweep plus the report connection.
        assert len(report.contacted_ips()) == 11
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.OTHER in categories

    def test_exfil(self, sandbox):
        report = sandbox.run(make_generic_exfil(1, ur("trusted.com")))
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.PRIVACY in categories

    def test_c2_bot(self, sandbox):
        report = sandbox.run(make_generic_c2(1, ur("trusted.com")))
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.CC in categories

    def test_badtraffic(self, sandbox):
        report = sandbox.run(make_generic_badtraffic(1, ur("trusted.com")))
        categories = [a.category for a in report.actionable_alerts]
        assert AlertCategory.BAD_TRAFFIC in categories

    def test_generic_families_dormant_without_ur(self, world):
        world.dns_hosts()[UR_NS].unload_zone("trusted.com")
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        report = sandbox.run(make_generic_trojan(1, ur("trusted.com")))
        assert report.contacted_ips() == set()

    def test_benign_updater_no_actionable_alerts(self, world):
        from repro.dns.resolver import RecursiveResolver

        # Benign sample needs a default resolver; skip root setup by
        # resolving through a resolver that will fail quietly.
        sandbox = Sandbox(world, victim_ip="10.99.0.1")
        report = sandbox.run(make_benign_updater(1, "trusted.com"))
        assert report.actionable_alerts == []
