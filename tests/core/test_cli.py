"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.seed == 7
        assert args.scale == "default"
        assert not args.post_disclosure
        assert not args.mx

    def test_all_flags(self):
        args = build_parser().parse_args(
            [
                "--seed",
                "42",
                "--scale",
                "small",
                "--post-disclosure",
                "--mx",
                "table1",
            ]
        )
        assert args.seed == 42
        assert args.scale == "small"
        assert args.post_disclosure and args.mx

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_engine_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.engine == "batched"
        assert args.max_concurrency == 8
        assert args.retries == 2
        assert args.timeout == 5.0
        assert args.loss_rate == 0.0

    def test_engine_flags(self):
        args = build_parser().parse_args(
            [
                "--engine",
                "sequential",
                "--max-concurrency",
                "16",
                "--retries",
                "4",
                "--timeout",
                "2.5",
                "--loss-rate",
                "0.1",
                "run",
            ]
        )
        assert args.engine == "sequential"
        assert args.max_concurrency == 16
        assert args.retries == 4
        assert args.timeout == 2.5
        assert args.loss_rate == 0.1

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "warp", "run"])


BASE = ["--scale", "small", "--seed", "9"]


class TestCommands:
    def test_run(self, capsys):
        assert main(BASE + ["run"]) == 0
        out = capsys.readouterr().out
        assert "unique_urs" in out
        assert "malicious" in out

    def test_table1(self, capsys):
        assert main(BASE + ["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(BASE + ["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Cloudflare" in out

    def test_run_prints_scan_metrics(self, capsys):
        assert main(BASE + ["run"]) == 0
        out = capsys.readouterr().out
        assert "scan engine metrics:" in out
        assert "[ur]" in out

    def test_run_sequential_engine(self, capsys):
        assert main(BASE + ["--engine", "sequential", "run"]) == 0
        assert "unique_urs" in capsys.readouterr().out

    def test_run_with_injected_loss(self, capsys):
        assert main(BASE + ["--loss-rate", "0.05", "run"]) == 0
        out = capsys.readouterr().out
        assert "retries:" in out

    def test_bad_loss_rate_rejected(self, capsys):
        assert main(BASE + ["--loss-rate", "1.5", "run"]) == 2

    def test_bad_engine_knob_exits_cleanly(self, capsys):
        assert main(BASE + ["--max-concurrency", "0", "run"]) == 2
        assert "max_concurrency" in capsys.readouterr().err

    def test_figures(self, capsys):
        assert main(BASE + ["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Figure 3(d)" in out
        assert "paper" in out

    def test_casestudies(self, capsys):
        assert main(BASE + ["casestudies"]) == 0
        out = capsys.readouterr().out
        assert "Dark.IoT" in out
        assert "SPF-masquerade" in out

    def test_defenses(self, capsys):
        assert main(BASE + ["defenses"]) == 0
        out = capsys.readouterr().out
        assert "reputation-based" in out
        assert "direct-resolution" in out

    def test_validate_exit_code(self, capsys):
        assert main(BASE + ["validate"]) == 0
        assert "false-negative" in capsys.readouterr().out

    def test_mx_flag_changes_sweep(self, capsys):
        assert main(BASE + ["--mx", "table1"]) == 0
        # The MX sweep sends 50% more queries; just assert it ran.
        assert "Table 1" in capsys.readouterr().out


class TestObservability:
    def test_trace_and_metrics_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            BASE
            + [
                "--trace-out",
                str(trace),
                "--metrics-out",
                str(metrics),
                "run",
            ]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line.strip()
        ]
        assert lines[0]["event"] == "trace.header"
        assert any(line["event"] == "run.end" for line in lines)
        document = json.loads(metrics.read_text())
        assert set(document) == {"format", "deterministic", "timing"}
        # stdout is unchanged by the artifact flags
        assert "unique_urs" in capsys.readouterr().out

    def test_quiet_hides_diagnostics_keeps_stdout(self, capsys):
        assert main(BASE + ["-q", "run"]) == 0
        captured = capsys.readouterr()
        assert "# scenario" not in captured.err
        assert "# stage-2 perf" not in captured.err
        assert "unique_urs" in captured.out

    def test_quiet_keeps_degradation_warning(self, capsys):
        code = main(BASE + ["-q", "--pdns-fault-rate", "0.6", "run"])
        assert code == 0
        assert "warning: degraded" in capsys.readouterr().err

    def test_verbose_shows_scenario_banner(self, capsys):
        assert main(BASE + ["-v", "run"]) == 0
        assert "# scenario" in capsys.readouterr().err

    def test_quiet_and_verbose_conflict(self, capsys):
        assert main(BASE + ["-q", "-v", "run"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_trace_summarize(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        assert main(BASE + ["--trace-out", str(trace), "-q", "run"]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        for marker in ("stage1-collect", "stage2-exclude", "run.end"):
            assert marker in out

    def test_trace_summarize_missing_file(self, capsys):
        assert main(["trace", "summarize", "/nonexistent/t.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_trace_bad_usage(self, capsys):
        assert main(["trace"]) == 2
        assert main(["trace", "frobnicate", "x"]) == 2
        assert "usage: repro trace summarize" in capsys.readouterr().err


class TestPlanCommand:
    def test_plan_json_round_trips(self, tmp_path, capsys):
        assert main(BASE + ["-q", "plan", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == 1
        assert len(payload["plan"]) == 64
        assert payload["groups"]
        assert all("identity" in group for group in payload["groups"])

    def test_plan_diff_identical(self, tmp_path, capsys):
        assert main(BASE + ["-q", "plan", "--json"]) == 0
        dump = tmp_path / "plan.json"
        dump.write_text(capsys.readouterr().out)
        assert main(BASE + ["-q", "plan", "--diff", str(dump)]) == 0
        assert "plans are identical" in capsys.readouterr().out

    def test_plan_diff_other_seed(self, tmp_path, capsys):
        assert main(BASE + ["-q", "plan", "--json"]) == 0
        dump = tmp_path / "plan.json"
        dump.write_text(capsys.readouterr().out)
        assert (
            main(
                ["--scale", "small", "--seed", "10", "-q"]
                + ["plan", "--diff", str(dump)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plans are identical" not in out
        assert "changed" in out

    def test_plan_diff_malformed_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": 99}')
        assert main(BASE + ["-q", "plan", "--diff", str(bad)]) == 2
        assert "plan summary" in capsys.readouterr().err

    def test_plan_diff_missing_file_exits_2(self, tmp_path, capsys):
        absent = tmp_path / "absent.json"
        assert main(BASE + ["-q", "plan", "--diff", str(absent)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_plan_explains_result_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(BASE + ["-q", "plan", "--result-store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "would replay" in out
        assert "would execute" in out


class TestResultStore:
    def test_warm_run_is_byte_identical_and_counted(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        metrics = tmp_path / "metrics.json"
        flags = ["--result-store", str(store), "-q", "run"]
        assert main(BASE + flags) == 0
        cold_out = capsys.readouterr().out
        assert main(
            BASE + ["--metrics-out", str(metrics)] + flags
        ) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        document = json.loads(metrics.read_text())
        counters = document["timing"]["incremental"]
        assert counters["hits"] > 0
        assert counters["misses"] == counters["stored"] == 0
        stats = json.loads((store / "store-stats.json").read_text())
        assert stats["hits"] == counters["hits"]

    def test_no_incremental_leaves_the_store_alone(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert main(BASE + ["-q", "run"]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                BASE
                + [
                    "--result-store",
                    str(store),
                    "--no-incremental",
                    "-q",
                    "run",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == plain
        assert not list(store.glob("group-*.json"))
