"""Tests for repro.core.records."""

from repro.core.records import (
    ClassifiedUR,
    IpVerdict,
    URCategory,
    UndelegatedRecord,
    dedupe_urs,
)
from repro.dns.name import name
from repro.dns.rdata import RRType


def ur(domain="victim.com", ns="10.0.0.1", rrtype=RRType.A, rdata="6.6.6.6"):
    return UndelegatedRecord(
        domain=name(domain),
        nameserver_ip=ns,
        provider="TestHost",
        rrtype=rrtype,
        rdata_text=rdata,
    )


class TestUniqueUrKey:
    def test_key_components(self):
        record = ur()
        assert record.key == (name("victim.com"), "10.0.0.1", RRType.A, "6.6.6.6")

    def test_same_record_different_nameserver_is_distinct(self):
        # The paper: the same record on two nameservers is two unique URs.
        assert ur(ns="10.0.0.1").key != ur(ns="10.0.0.2").key

    def test_rrtype_text(self):
        assert ur().rrtype_text == "A"
        assert ur(rrtype=RRType.TXT, rdata="x").rrtype_text == "TXT"

    def test_describe(self):
        text = ur().describe()
        assert "victim.com" in text and "10.0.0.1" in text


class TestDedupe:
    def test_duplicates_dropped_keep_first(self):
        records = [ur(), ur(), ur(ns="10.0.0.2")]
        unique = dedupe_urs(records)
        assert len(unique) == 2
        assert unique[0] is records[0]

    def test_empty(self):
        assert dedupe_urs([]) == []


class TestCategories:
    def test_suspicious_categories(self):
        assert URCategory.MALICIOUS.is_suspicious
        assert URCategory.UNKNOWN.is_suspicious
        assert not URCategory.CORRECT.is_suspicious
        assert not URCategory.PROTECTIVE.is_suspicious

    def test_classified_flags(self):
        entry = ClassifiedUR(record=ur(), category=URCategory.MALICIOUS)
        assert entry.is_suspicious and entry.is_malicious
        entry = ClassifiedUR(record=ur(), category=URCategory.UNKNOWN)
        assert entry.is_suspicious and not entry.is_malicious


class TestIpVerdict:
    def test_label_sources(self):
        both = IpVerdict("1.1.1.1", intel_flagged=True, ids_flagged=True)
        assert both.label_source == "both"
        intel = IpVerdict("1.1.1.1", intel_flagged=True, ids_flagged=False)
        assert intel.label_source == "intel"
        ids = IpVerdict("1.1.1.1", intel_flagged=False, ids_flagged=True)
        assert ids.label_source == "ids"
        none = IpVerdict("1.1.1.1", intel_flagged=False, ids_flagged=False)
        assert none.label_source == "none"

    def test_is_malicious(self):
        assert IpVerdict("1.1.1.1", True, False).is_malicious
        assert IpVerdict("1.1.1.1", False, True).is_malicious
        assert not IpVerdict("1.1.1.1", False, False).is_malicious
