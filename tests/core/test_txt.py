"""Tests for repro.core.txt: TXT classification and IP extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.txt import (
    TxtCategory,
    classify_txt,
    extract_ips,
    is_email_related,
    spf_mechanisms,
)


class TestClassification:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("v=spf1 ip4:1.2.3.4 -all", TxtCategory.SPF),
            ("V=SPF1 include:_spf.example.com ~all", TxtCategory.SPF),
            ("v=DMARC1; p=reject; rua=mailto:x@y.z", TxtCategory.DMARC),
            ("v=DKIM1; k=rsa; p=MIGfMA0GCSq", TxtCategory.DKIM),
            (
                "google-site-verification=abc123",
                TxtCategory.VERIFICATION,
            ),
            ("ms-domain-verification=xyz", TxtCategory.VERIFICATION),
            (
                "p=" + "A" * 32,
                TxtCategory.KEY_EXCHANGE,
            ),
            ("v=parked; nothing here", TxtCategory.PROVIDER_NOTICE),
            ("this domain is not hosted at ClouDNS", TxtCategory.PROVIDER_NOTICE),
            ("cmd=4f2a9; k=deadbeef", TxtCategory.OTHER),
            ("", TxtCategory.OTHER),
        ],
    )
    def test_categories(self, value, expected):
        assert classify_txt(value) == expected

    def test_spf_beats_other_patterns(self):
        # An SPF record containing "verify" in a macro is still SPF.
        assert classify_txt("v=spf1 exists:verify.%{i}.x -all") == TxtCategory.SPF

    def test_email_related(self):
        assert is_email_related("v=spf1 -all")
        assert is_email_related("v=DMARC1; p=none")
        assert not is_email_related("cmd=blob")


class TestIpExtraction:
    def test_spf_ip4_mechanisms(self):
        ips = extract_ips("v=spf1 ip4:192.0.2.1 ip4:192.0.2.2/31 -all")
        assert ips == ["192.0.2.1", "192.0.2.2"]

    def test_bare_dotted_quads(self):
        assert extract_ips("connect to 198.51.100.7 now") == ["198.51.100.7"]

    def test_mixed_and_deduped(self):
        ips = extract_ips("v=spf1 ip4:1.2.3.4 -all; backup 1.2.3.4 5.6.7.8")
        assert ips == ["1.2.3.4", "5.6.7.8"]

    def test_invalid_octets_ignored(self):
        assert extract_ips("not an ip 999.1.2.3") == []
        assert extract_ips("version 1.2.3.4.5 string") == []

    def test_no_ips(self):
        assert extract_ips("hello world") == []

    def test_boundary_values(self):
        assert extract_ips("x 255.255.255.255 y") == ["255.255.255.255"]
        assert extract_ips("x 0.0.0.0 y") == ["0.0.0.0"]


class TestSpfMechanisms:
    def test_mechanisms_extracted(self):
        mechanisms = spf_mechanisms("v=spf1 ip4:1.2.3.4 include:x.y -all")
        assert mechanisms == ["ip4:1.2.3.4", "include:x.y", "-all"]

    def test_non_spf_returns_none(self):
        assert spf_mechanisms("v=DMARC1; p=none") is None


@given(st.text(max_size=300))
def test_classify_never_crashes(value):
    assert classify_txt(value) in {
        TxtCategory.SPF,
        TxtCategory.DKIM,
        TxtCategory.DMARC,
        TxtCategory.VERIFICATION,
        TxtCategory.KEY_EXCHANGE,
        TxtCategory.PROVIDER_NOTICE,
        TxtCategory.OTHER,
    }


@given(st.text(max_size=300))
def test_extract_ips_returns_valid_addresses(value):
    for address in extract_ips(value):
        octets = address.split(".")
        assert len(octets) == 4
        assert all(0 <= int(octet) <= 255 for octet in octets)
