"""Tests for repro.core.report on synthetic and real reports."""

import pytest

from repro.core.records import (
    ClassifiedUR,
    IpVerdict,
    URCategory,
    UndelegatedRecord,
)
from repro.core.report import MeasurementReport, TypeStats
from repro.dns.name import name
from repro.dns.rdata import RRType


def entry(
    domain="v.com",
    ns="10.0.0.1",
    provider="P1",
    rrtype=RRType.A,
    rdata="6.6.6.1",
    category=URCategory.UNKNOWN,
    ips=(),
    txt_category=None,
):
    return ClassifiedUR(
        record=UndelegatedRecord(
            domain=name(domain),
            nameserver_ip=ns,
            provider=provider,
            rrtype=rrtype,
            rdata_text=rdata,
        ),
        category=category,
        corresponding_ips=tuple(ips),
        txt_category=txt_category,
    )


@pytest.fixture
def report():
    verdicts = {
        "6.6.6.1": IpVerdict(
            "6.6.6.1",
            intel_flagged=True,
            ids_flagged=False,
            vendor_count=2,
            tags=frozenset({"Trojan", "Scanner"}),
        ),
        "6.6.6.2": IpVerdict(
            "6.6.6.2",
            intel_flagged=False,
            ids_flagged=True,
            alert_categories=("C&C Activity",),
        ),
        "6.6.6.3": IpVerdict(
            "6.6.6.3",
            intel_flagged=True,
            ids_flagged=True,
            vendor_count=8,
            tags=frozenset({"Trojan"}),
            alert_categories=("Trojan Activity", "C&C Activity"),
        ),
        "9.9.9.9": IpVerdict("9.9.9.9", False, False),
    }
    classified = [
        entry(
            rdata="6.6.6.1",
            category=URCategory.MALICIOUS,
            ips=("6.6.6.1",),
        ),
        entry(
            domain="w.com",
            rdata="6.6.6.2",
            category=URCategory.MALICIOUS,
            ips=("6.6.6.2",),
            provider="P2",
        ),
        entry(
            domain="x.com",
            rrtype=RRType.TXT,
            rdata="v=spf1 ip4:6.6.6.3 -all",
            category=URCategory.MALICIOUS,
            ips=("6.6.6.3",),
            txt_category="spf",
        ),
        entry(
            domain="y.com",
            rrtype=RRType.TXT,
            rdata="cmd=blob",
            category=URCategory.UNKNOWN,
            ips=("9.9.9.9",),
            txt_category="other",
        ),
        entry(domain="z.com", rdata="10.1.0.1", category=URCategory.CORRECT),
        entry(
            domain="z.com",
            ns="10.0.0.9",
            rdata="203.0.113.250",
            category=URCategory.PROTECTIVE,
        ),
    ]
    return MeasurementReport(classified=classified, ip_verdicts=verdicts)


class TestPartitions:
    def test_category_counts(self, report):
        counts = report.category_counts()
        assert counts == {
            "malicious": 3,
            "unknown": 1,
            "correct": 1,
            "protective": 1,
        }

    def test_suspicious(self, report):
        assert len(report.suspicious) == 4

    def test_by_category(self, report):
        assert len(report.by_category(URCategory.PROTECTIVE)) == 1


class TestTable1Stats:
    def test_total_row(self, report):
        stats = report.suspicious_stats()["Total"]
        assert stats.urs_total == 4
        assert stats.urs_malicious == 3
        assert stats.urs_malicious_pct == 75.0
        assert stats.ips_total == 4
        assert stats.ips_malicious == 3

    def test_type_rows(self, report):
        stats = report.suspicious_stats()
        assert stats["A"].urs_total == 2
        assert stats["TXT"].urs_total == 2
        assert stats["TXT"].urs_malicious == 1

    def test_domain_and_provider_counts(self, report):
        stats = report.suspicious_stats()["Total"]
        assert stats.domains_total == 4
        assert stats.domains_malicious == 3
        assert stats.providers_total == 2
        assert stats.providers_malicious == 2

    def test_pct_zero_safe(self):
        stats = TypeStats("x", 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        assert stats.urs_malicious_pct == 0.0


class TestFigureData:
    def test_provider_mix_sorted_by_volume(self, report):
        mix = report.provider_category_mix()
        assert mix[0][0] == "P1"
        assert sum(mix[0][1].values()) == 5

    def test_provider_mix_top_limit(self, report):
        assert len(report.provider_category_mix(top=1)) == 1

    def test_label_provenance(self, report):
        assert report.label_provenance() == {
            "intel": 1,
            "ids": 1,
            "both": 1,
        }

    def test_vendor_histogram(self, report):
        histogram = report.vendor_count_histogram()
        assert histogram["1-2"] == 1
        assert histogram["7-11"] == 1
        assert histogram["3-4"] == 0

    def test_alert_category_shares(self, report):
        shares = report.alert_category_shares()
        assert shares["C&C Activity"] == pytest.approx(200 / 3)
        assert shares["Trojan Activity"] == pytest.approx(100 / 3)

    def test_tag_shares_over_intel_flagged(self, report):
        shares = report.tag_shares()
        # Both intel-flagged IPs carry Trojan; one carries Scanner.
        assert shares["Trojan"] == 100.0
        assert shares["Scanner"] == 50.0

    def test_email_txt_share(self, report):
        assert report.email_related_txt_share() == 100.0

    def test_email_txt_share_empty(self):
        empty = MeasurementReport(classified=[], ip_verdicts={})
        assert empty.email_related_txt_share() == 0.0


class TestSummary:
    def test_summary_mentions_counts(self, report):
        text = report.summary()
        assert "malicious" in text
        assert "suspicious" in text

    def test_summary_with_validation(self, report):
        report.false_negative_rate = 0.0
        assert "FN rate" in report.summary()

    def test_summary_on_real_run(self, small_report):
        text = small_report.summary()
        assert "unique URs classified" in text
