"""Tests for repro.core.longitudinal: repeated snapshots and diffs."""

import random
from types import SimpleNamespace

import pytest

from repro.core.longitudinal import (
    LongitudinalStudy,
    Snapshot,
    diff_reports,
)
from repro.core.records import ClassifiedUR, URCategory, UndelegatedRecord
from repro.dns.name import Name
from repro.scenario import build_world, small_config


@pytest.fixture(scope="module")
def world():
    return build_world(small_config(seed=31))


class TestDiffReports:
    def test_identical_runs_diff_empty(self, world):
        from repro.core import URHunter

        first = URHunter.from_world(world).run(validate=False)
        second = URHunter.from_world(world).run(validate=False)
        diff = diff_reports(first, second)
        assert diff.appeared == []
        assert diff.disappeared == []
        assert diff.category_changes == {}
        assert diff.persisted == len(first.classified)


def _synthetic_report(rng, pool_size=40, sample=25):
    """A report stand-in with a seeded-random classified population.

    ``diff_reports`` reads only ``report.classified``; drawing from a
    shared UR pool makes overlap (persistence, category churn) likely
    while keeping every draw reproducible from the rng.
    """
    classified = []
    seen = set()
    for _ in range(sample):
        index = rng.randrange(pool_size)
        if index in seen:
            continue
        seen.add(index)
        record = UndelegatedRecord(
            domain=Name.from_text(f"ur-{index}.example.com"),
            nameserver_ip=f"10.0.{index % 8}.{index}",
            provider="ClouDNS",
            rrtype=1 if index % 3 else 16,
            rdata_text=f"198.51.100.{index}",
        )
        classified.append(
            ClassifiedUR(
                record=record,
                category=rng.choice(list(URCategory)),
            )
        )
    return SimpleNamespace(classified=classified)


class TestDiffReportsProperties:
    """Seeded-random property tests: the invariants every snapshot
    pair must satisfy, regardless of the populations drawn."""

    SEEDS = range(20)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reflexivity(self, seed):
        report = _synthetic_report(random.Random(seed))
        diff = diff_reports(report, report)
        assert diff.appeared == []
        assert diff.disappeared == []
        assert diff.category_changes == {}
        assert diff.persisted == len(report.classified)
        assert diff.newly_malicious == []
        assert diff.became_malicious() == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_key_stability_and_conservation(self, seed):
        rng = random.Random(seed)
        before, after = _synthetic_report(rng), _synthetic_report(rng)
        diff = diff_reports(before, after)
        old_keys = {entry.record.key for entry in before.classified}
        new_keys = {entry.record.key for entry in after.classified}
        # every classified key is accounted for exactly once
        assert {e.record.key for e in diff.appeared} == new_keys - old_keys
        assert {e.record.key for e in diff.disappeared} == (
            old_keys - new_keys
        )
        assert diff.persisted == len(old_keys & new_keys)
        # category changes only ever name persisted keys
        assert set(diff.category_changes) <= old_keys & new_keys
        for key, (old, new) in diff.category_changes.items():
            assert old is not new

    @pytest.mark.parametrize("seed", SEEDS)
    def test_newly_and_became_malicious_are_disjoint(self, seed):
        rng = random.Random(seed)
        before, after = _synthetic_report(rng), _synthetic_report(rng)
        diff = diff_reports(before, after)
        newly = {entry.record.key for entry in diff.newly_malicious}
        became = set(diff.became_malicious())
        # appeared-malicious vs upgraded-in-place partition the new
        # malicious population: a key cannot be in both
        assert newly & became == set()
        assert all(entry.is_malicious for entry in diff.newly_malicious)
        for key in became:
            old, new = diff.category_changes[key]
            assert new is URCategory.MALICIOUS
            assert old is not URCategory.MALICIOUS

    @pytest.mark.parametrize("seed", SEEDS)
    def test_diff_is_antisymmetric(self, seed):
        rng = random.Random(seed)
        before, after = _synthetic_report(rng), _synthetic_report(rng)
        forward = diff_reports(before, after)
        backward = diff_reports(after, before)
        assert {e.record.key for e in forward.appeared} == {
            e.record.key for e in backward.disappeared
        }
        assert forward.persisted == backward.persisted
        assert set(forward.category_changes) == set(
            backward.category_changes
        )
        for key, (old, new) in forward.category_changes.items():
            assert backward.category_changes[key] == (new, old)


class TestStudy:
    def test_requires_rounds(self, world):
        with pytest.raises(ValueError):
            LongitudinalStudy(world).run(rounds=0)

    def test_snapshots_advance_clock(self, world):
        study = LongitudinalStudy(world)
        snapshots = study.run(rounds=2, interval=100.0)
        assert len(snapshots) == 2
        assert snapshots[1].taken_at > snapshots[0].taken_at

    def test_attacker_churn_visible_in_diff(self):
        churn_world = build_world(small_config(seed=32))
        cloudns = churn_world.providers["ClouDNS"]
        state = {}

        def mutate(world, round_index):
            # A fresh campaign appears; the Dark.IoT pastebin zone is
            # taken down (the paper: "not all of the URs related to the
            # analyzed malware families can be resolved").
            attacker = world.attacker
            campaign = attacker.new_campaign("late-wave", ["ClouDNS"])
            (c2,) = attacker.stand_up_c2(1)
            # The new UR must target a *measured* domain; skip domains
            # ClouDNS refuses (e.g. already hosted, no cross-user dups).
            for candidate in world.domain_targets:
                hosted = attacker.plant_a_record(
                    campaign, cloudns, str(candidate.domain), c2
                )
                if hosted is not None:
                    break
            assert hosted is not None
            state["new_c2"] = c2
            darkiot = world.case_studies["Dark.IoT"]
            for hosted in list(darkiot.hosted_zones):
                if str(hosted.domain) == "raw.pastebin.com":
                    cloudns.delete_zone(hosted)

        study = LongitudinalStudy(churn_world, mutate=mutate)
        study.run(rounds=2, interval=3600.0)
        (diff,) = study.diffs()
        appeared_rdata = {
            entry.record.rdata_text for entry in diff.appeared
        }
        assert state["new_c2"] in appeared_rdata
        disappeared_domains = {
            str(entry.record.domain) for entry in diff.disappeared
        }
        assert "raw.pastebin.com" in disappeared_domains
        assert diff.persisted > 0
        assert "appeared" in diff.summary()

    def test_late_intel_flag_changes_category(self):
        world = build_world(small_config(seed=33))

        def mutate(world_obj, round_index):
            # A vendor flags a previously unobserved C2: persisted URs
            # upgrade from unknown to malicious.
            report = world_obj  # noqa: F841  (clarity)
            for address in sorted(world_obj.attacker.all_c2_ips()):
                if not world_obj.intel.is_flagged(address):
                    world_obj.vendors[0].flag(address, ["Trojan"])
                    break

        study = LongitudinalStudy(world, mutate=mutate)
        study.run(rounds=2, interval=3600.0)
        (diff,) = study.diffs()
        upgraded = diff.became_malicious()
        # The flagged C2 had URs in round 1 (unknown) that are now
        # malicious — unless the chosen IP had no unresolved UR, in
        # which case nothing changes; assert consistency either way.
        for key in upgraded:
            old, new = diff.category_changes[key]
            assert new is URCategory.MALICIOUS
