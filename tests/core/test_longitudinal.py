"""Tests for repro.core.longitudinal: repeated snapshots and diffs."""

import pytest

from repro.core.longitudinal import (
    LongitudinalStudy,
    Snapshot,
    diff_reports,
)
from repro.core.records import URCategory
from repro.scenario import build_world, small_config


@pytest.fixture(scope="module")
def world():
    return build_world(small_config(seed=31))


class TestDiffReports:
    def test_identical_runs_diff_empty(self, world):
        from repro.core import URHunter

        first = URHunter.from_world(world).run(validate=False)
        second = URHunter.from_world(world).run(validate=False)
        diff = diff_reports(first, second)
        assert diff.appeared == []
        assert diff.disappeared == []
        assert diff.category_changes == {}
        assert diff.persisted == len(first.classified)


class TestStudy:
    def test_requires_rounds(self, world):
        with pytest.raises(ValueError):
            LongitudinalStudy(world).run(rounds=0)

    def test_snapshots_advance_clock(self, world):
        study = LongitudinalStudy(world)
        snapshots = study.run(rounds=2, interval=100.0)
        assert len(snapshots) == 2
        assert snapshots[1].taken_at > snapshots[0].taken_at

    def test_attacker_churn_visible_in_diff(self):
        churn_world = build_world(small_config(seed=32))
        cloudns = churn_world.providers["ClouDNS"]
        state = {}

        def mutate(world, round_index):
            # A fresh campaign appears; the Dark.IoT pastebin zone is
            # taken down (the paper: "not all of the URs related to the
            # analyzed malware families can be resolved").
            attacker = world.attacker
            campaign = attacker.new_campaign("late-wave", ["ClouDNS"])
            (c2,) = attacker.stand_up_c2(1)
            # The new UR must target a *measured* domain; skip domains
            # ClouDNS refuses (e.g. already hosted, no cross-user dups).
            for candidate in world.domain_targets:
                hosted = attacker.plant_a_record(
                    campaign, cloudns, str(candidate.domain), c2
                )
                if hosted is not None:
                    break
            assert hosted is not None
            state["new_c2"] = c2
            darkiot = world.case_studies["Dark.IoT"]
            for hosted in list(darkiot.hosted_zones):
                if str(hosted.domain) == "raw.pastebin.com":
                    cloudns.delete_zone(hosted)

        study = LongitudinalStudy(churn_world, mutate=mutate)
        study.run(rounds=2, interval=3600.0)
        (diff,) = study.diffs()
        appeared_rdata = {
            entry.record.rdata_text for entry in diff.appeared
        }
        assert state["new_c2"] in appeared_rdata
        disappeared_domains = {
            str(entry.record.domain) for entry in diff.disappeared
        }
        assert "raw.pastebin.com" in disappeared_domains
        assert diff.persisted > 0
        assert "appeared" in diff.summary()

    def test_late_intel_flag_changes_category(self):
        world = build_world(small_config(seed=33))

        def mutate(world_obj, round_index):
            # A vendor flags a previously unobserved C2: persisted URs
            # upgrade from unknown to malicious.
            report = world_obj  # noqa: F841  (clarity)
            for address in sorted(world_obj.attacker.all_c2_ips()):
                if not world_obj.intel.is_flagged(address):
                    world_obj.vendors[0].flag(address, ["Trojan"])
                    break

        study = LongitudinalStudy(world, mutate=mutate)
        study.run(rounds=2, interval=3600.0)
        (diff,) = study.diffs()
        upgraded = diff.became_malicious()
        # The flagged C2 had URs in round 1 (unknown) that are now
        # malicious — unless the chosen IP had no unresolved UR, in
        # which case nothing changes; assert consistency either way.
        for key in upgraded:
            old, new = diff.category_changes[key]
            assert new is URCategory.MALICIOUS
