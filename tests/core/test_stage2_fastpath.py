"""Stage-2 fast path: memoization, parallelism, and byte-identity.

The optimized exclusion stage (indexed stores + verdict memo + worker
threads) must be invisible in the output: every configuration — naive,
memoized, one worker, four workers, chaos-degraded — produces the same
classifications, and the byte-compared report text is identical across
worker counts.
"""

import pytest

from repro.core import HunterConfig, URHunter
from repro.core.parallel import Stage2Executor, Stage2Metrics
from repro.core.txt import _CLASSIFIERS, TxtCategory, classify_txt
from repro.pipeline import FaultPlan, FlakyIPInfo, FlakyPassiveDNS
from repro.pipeline.checkpoint import config_fingerprint
from repro.scenario import build_world, small_config


def _run(config: HunterConfig, seed: int = 7, faults: bool = False):
    """One full measurement over a fresh small world."""
    world = build_world(small_config(seed=seed))
    hunter = URHunter.from_world(world, config)
    if faults:
        if world.pdns is not None:
            hunter.pdns = FlakyPassiveDNS(
                world.pdns, FaultPlan(seed=5, error_rate=0.3)
            )
        hunter.stage2_ipinfo = FlakyIPInfo(
            world.ipinfo, FaultPlan(seed=6, error_rate=0.3)
        )
    return hunter, hunter.run()


def _classification(report):
    return [
        (
            entry.record.domain,
            entry.record.nameserver_ip,
            entry.record.rrtype,
            entry.record.rdata_text,
            entry.category,
            entry.reasons,
            entry.txt_category,
        )
        for entry in report.classified
    ]


class TestByteIdentity:
    def test_workers_1_vs_4_byte_identical_report(self):
        _, one = _run(HunterConfig(stage2_workers=1))
        _, four = _run(HunterConfig(stage2_workers=4))
        assert one.summary() == four.summary()
        assert _classification(one) == _classification(four)

    def test_memoized_vs_naive_same_classification(self):
        _, memoized = _run(HunterConfig(stage2_memoize=True))
        _, naive = _run(HunterConfig(stage2_memoize=False))
        assert _classification(memoized) == _classification(naive)
        assert memoized.false_negative_rate == naive.false_negative_rate

    def test_chaos_run_identical_to_naive_path(self):
        """Fault-injected sources force the exact per-record path, so a
        memoize-enabled chaos run is byte-identical to a disabled one."""
        _, enabled = _run(HunterConfig(stage2_memoize=True), faults=True)
        _, disabled = _run(HunterConfig(stage2_memoize=False), faults=True)
        assert enabled.summary() == disabled.summary()
        assert _classification(enabled) == _classification(disabled)

    def test_chaos_workers_do_not_change_output(self):
        _, one = _run(HunterConfig(stage2_workers=1), faults=True)
        _, four = _run(HunterConfig(stage2_workers=4), faults=True)
        assert one.summary() == four.summary()


class TestMemoGate:
    def test_clean_run_is_memoized(self):
        hunter, report = _run(HunterConfig())
        assert hunter.last_checker.memoizable
        assert report.stage2_metrics is not None
        assert report.stage2_metrics.memoized

    def test_faulty_sources_disable_memoization(self):
        hunter, report = _run(HunterConfig(), faults=True)
        assert not hunter.last_checker.memoizable
        assert report.stage2_metrics is not None
        assert not report.stage2_metrics.memoized

    def test_never_faulting_wrappers_stay_memoizable(self):
        world = build_world(small_config(seed=7))
        hunter = URHunter.from_world(world, HunterConfig())
        if world.pdns is not None:
            hunter.pdns = FlakyPassiveDNS(world.pdns, FaultPlan())
        hunter.stage2_ipinfo = FlakyIPInfo(world.ipinfo, FaultPlan())
        report = hunter.run()
        assert hunter.last_checker.memoizable
        assert report.stage2_metrics.memoized


class TestMetrics:
    def test_report_carries_stage2_metrics(self):
        _, report = _run(HunterConfig())
        metrics = report.stage2_metrics
        assert metrics.records == len(report.classified)
        assert metrics.distinct_keys > 0
        assert metrics.dedup_factor >= 1.0
        assert metrics.cache_misses == metrics.distinct_keys
        assert "stage-2 exclusion metrics:" in report.summary()
        assert "dedup" in report.summary()

    def test_summary_excludes_scheduling_dependent_fields(self):
        metrics = Stage2Metrics(records=10, wall_s=1.5, workers=4)
        assert "wall" not in metrics.summary()
        assert "workers" not in metrics.summary()
        assert "workers: 4" in metrics.timing_summary()
        assert "wall: 1500.0ms" in metrics.timing_summary()

    def test_condition_attribution(self):
        metrics = Stage2Metrics()
        metrics.attribute("ip-subset", 0.5)
        metrics.attribute("ip-subset", 0.25)
        metrics.attribute("survived-exclusion", 0.125)
        assert metrics.condition_s == {
            "ip-subset": 0.75,
            "survived-exclusion": 0.125,
        }


class TestExecutor:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            Stage2Executor(0)

    def test_map_keys_inline_and_threaded_agree(self):
        items = [(index, index) for index in range(37)]
        inline = Stage2Executor(1).map_keys(items, lambda n: n * n)
        threaded = Stage2Executor(4).map_keys(items, lambda n: n * n)
        assert {k: v for k, (v, _) in inline.items()} == {
            k: v for k, (v, _) in threaded.items()
        }
        assert len(threaded) == len(items)


class TestCheckpointFingerprint:
    def test_perf_knobs_excluded_from_fingerprint(self):
        base = config_fingerprint(HunterConfig())
        assert config_fingerprint(HunterConfig(stage2_workers=8)) == base
        assert (
            config_fingerprint(HunterConfig(stage2_memoize=False)) == base
        )
        # execution mode is a perf knob too: batch and stream assemble
        # byte-identical stage results, so their checkpoints interchange
        assert config_fingerprint(HunterConfig(execution="stream")) == base
        assert (
            config_fingerprint(
                HunterConfig(execution="stream", channel_depth=1)
            )
            == base
        )

    def test_semantic_knobs_still_fingerprinted(self):
        base = config_fingerprint(HunterConfig())
        assert config_fingerprint(HunterConfig(seed=99)) != base


class TestCombinedTxtClassifier:
    REFERENCE_CORPUS = [
        "v=spf1 ip4:192.0.2.0/24 -all",
        "v=DMARC1; p=reject",
        "v=DKIM1; k=rsa; p=MIGfMA0GCSqGSIb3DQEBAQUAA4GNADCBiQ",
        "google-site-verification=abcdefghijklmnop",
        "k=rsaAAAAB3NzaC1yc2EAAAADAQABAAABgQDJ",
        "p=MIGfMA0GCSqGSIb3DQEBAQUAA4GNADCBiQKBgQC7",
        "v=parked domain",
        "this domain is not hosted here",
        "just some free-form text",
        "",
        # precedence traps: a lower-precedence alternative matches at an
        # earlier position than a higher-precedence one
        "site-verification; k=rsaAAAAB3NzaC1yc2EAAAADAQABAAAB",
        "domain-verification=x v=spf1 -all",
        "validation-token v=dmarc1; p=none",
    ]

    def _reference(self, value):
        for category, pattern in _CLASSIFIERS:
            if pattern.search(value):
                return category
        return TxtCategory.OTHER

    def test_combined_matches_reference_loop(self):
        for value in self.REFERENCE_CORPUS:
            assert classify_txt(value) == self._reference(value), value

    def test_precedence_preserved_over_leftmost_match(self):
        # "verification" appears first in the text, but DKIM outranks it
        value = "site-verification; k=rsa p=MIGfMA0GCSqGSIb3DQEBAQUA"
        assert classify_txt(value) == TxtCategory.DKIM

    def test_no_match_stays_other(self):
        assert classify_txt("hello world") == TxtCategory.OTHER
