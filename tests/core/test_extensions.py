"""Tests for the future-work extensions: MX sweep + PDNS subdomain
recovery (paper §6, "Limitations and future work")."""

import pytest

from repro.core import HunterConfig, URCategory, URHunter
from repro.core.collector import DEFAULT_QUERY_TYPES, DomainTarget
from repro.core.hunter import recover_pdns_subdomains
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.pdns import PassiveDnsStore

MX_CONFIG = HunterConfig(
    query_types=(RRType.A, RRType.TXT, RRType.MX)
)


class TestMxSweep:
    @pytest.fixture(scope="class")
    def mx_report(self, small_world):
        hunter = URHunter.from_world(small_world, MX_CONFIG)
        return hunter.run(validate=False)

    def test_mx_urs_collected(self, mx_report):
        mx_entries = [
            entry
            for entry in mx_report.classified
            if entry.record.rrtype == RRType.MX
        ]
        assert mx_entries

    def test_legitimate_mx_excluded_as_correct(self, mx_report):
        """Fleet-wide-served legit MX records match the correct DB."""
        mx_correct = [
            entry
            for entry in mx_report.classified
            if entry.record.rrtype == RRType.MX
            and entry.category is URCategory.CORRECT
        ]
        assert mx_correct

    def test_attacker_mx_flagged_via_cohost_join(
        self, small_world, mx_report
    ):
        attacker_mx = [
            entry
            for entry in mx_report.classified
            if entry.record.rrtype == RRType.MX
            and (
                entry.record.domain,
                entry.record.rrtype,
                entry.record.rdata_text,
            )
            in small_world.attacker_identities
        ]
        if not attacker_mx:
            pytest.skip("seed produced no attacker MX URs")
        # The co-hosted A join provides corresponding IPs whenever a
        # *suspicious* A UR shares the (domain, nameserver) pair; if the
        # A record was excluded upstream (e.g. the geo condition), the
        # MX legitimately stays IP-less.
        suspicious_a_pairs = {
            (entry.record.domain, entry.record.nameserver_ip)
            for entry in mx_report.suspicious
            if entry.record.rrtype == RRType.A
        }
        for entry in attacker_mx:
            pair = (entry.record.domain, entry.record.nameserver_ip)
            if pair in suspicious_a_pairs:
                assert entry.corresponding_ips
            else:
                assert not entry.corresponding_ips

    def test_default_sweep_has_no_mx(self, small_report):
        assert not any(
            entry.record.rrtype == RRType.MX
            for entry in small_report.classified
        )

    def test_default_query_types(self):
        assert DEFAULT_QUERY_TYPES == (RRType.A, RRType.TXT)


class TestPdnsSubdomainRecovery:
    def _targets(self):
        return [
            DomainTarget(name("victim.com"), 1),
            DomainTarget(name("other.net"), 2),
        ]

    def test_recovers_historical_subdomains(self):
        pdns = PassiveDnsStore()
        pdns.observe("www.victim.com", RRType.A, "10.1.0.1", 100.0)
        pdns.observe("api.victim.com", RRType.A, "10.1.0.2", 100.0)
        recovered = recover_pdns_subdomains(pdns, self._targets(), now=200.0)
        names = {str(target.domain) for target in recovered}
        assert names == {"www.victim.com", "api.victim.com"}

    def test_inherits_parent_rank(self):
        pdns = PassiveDnsStore()
        pdns.observe("cdn.other.net", RRType.A, "10.1.0.1", 100.0)
        (recovered,) = recover_pdns_subdomains(
            pdns, self._targets(), now=200.0
        )
        assert recovered.rank == 2

    def test_ignores_unrelated_domains(self):
        pdns = PassiveDnsStore()
        pdns.observe("www.elsewhere.org", RRType.A, "10.1.0.1", 100.0)
        assert recover_pdns_subdomains(pdns, self._targets(), 200.0) == []

    def test_ignores_targets_themselves(self):
        pdns = PassiveDnsStore()
        pdns.observe("victim.com", RRType.A, "10.1.0.1", 100.0)
        assert recover_pdns_subdomains(pdns, self._targets(), 200.0) == []

    def test_deterministic_order(self):
        pdns = PassiveDnsStore()
        for sub in ("zz", "aa", "mm"):
            pdns.observe(f"{sub}.victim.com", RRType.A, "10.1.0.1", 100.0)
        recovered = recover_pdns_subdomains(pdns, self._targets(), 200.0)
        names = [str(target.domain) for target in recovered]
        assert names == sorted(names)

    def test_end_to_end_expansion(self, small_world):
        """With expansion on, the sweep covers the recovered www/api/mail
        subdomains and classifies their URs."""
        config = HunterConfig(expand_pdns_subdomains=True)
        report = URHunter.from_world(small_world, config).run(validate=False)
        subdomain_entries = [
            entry
            for entry in report.classified
            if str(entry.record.domain).startswith(("www.", "api."))
        ]
        assert subdomain_entries
        # Legit subdomain answers from fleet-wide servers are excluded.
        assert any(
            entry.category is URCategory.CORRECT
            for entry in subdomain_entries
        )
