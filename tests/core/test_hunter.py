"""End-to-end tests for URHunter over the shared small world."""

import pytest

from repro.core import HunterConfig, URCategory, URHunter
from repro.dns.rdata import RRType
from repro.sandbox.ids import Severity


class TestPipelineInvariants:
    def test_every_ur_classified(self, small_report):
        assert small_report.classified
        for entry in small_report.classified:
            assert entry.category in URCategory

    def test_unique_ur_keys(self, small_report):
        keys = [entry.record.key for entry in small_report.classified]
        assert len(keys) == len(set(keys))

    def test_counts_sum(self, small_report):
        counts = small_report.category_counts()
        assert sum(counts.values()) == len(small_report.classified)

    def test_all_four_categories_present(self, small_report):
        counts = small_report.category_counts()
        for category in ("correct", "protective", "unknown", "malicious"):
            assert counts[category] > 0, f"no {category} URs in scenario"

    def test_queries_tracked(self, small_report):
        assert small_report.queries_sent > 0
        assert small_report.responses_seen > 0

    def test_malicious_urs_have_corresponding_ips(self, small_report):
        for entry in small_report.malicious:
            assert entry.corresponding_ips
            assert any(
                small_report.ip_verdicts[address].is_malicious
                for address in entry.corresponding_ips
            )

    def test_malicious_share_in_paper_band(self, small_report):
        counts = small_report.category_counts()
        suspicious = counts["unknown"] + counts["malicious"]
        share = counts["malicious"] / suspicious
        # The paper measured 25.41%; the small test world is noisy, so
        # the band is generous (the default-scale benchmark asserts a
        # tighter one).
        assert 0.05 < share < 0.80


class TestZeroFalseNegativeValidation:
    def test_fn_rate_is_zero(self, small_report):
        """§4.2: delegated records are never labeled suspicious."""
        assert small_report.false_negative_rate == 0.0


class TestGroundTruthSeparation:
    def test_attacker_records_survive_stage2(self, small_world, small_report):
        """Attacker-planted URs survive stage 2, except via the geo
        condition: an attacker renting a server in the same country as
        the victim's hosting slips through Appendix B — a real weakness
        of the paper's design that the ablation bench quantifies."""
        for entry in small_report.classified:
            identity = (
                entry.record.domain,
                entry.record.rrtype,
                entry.record.rdata_text,
            )
            if identity in small_world.attacker_identities:
                assert entry.is_suspicious or entry.reasons == (
                    "geo-subset",
                ), entry

    def test_most_attacker_records_survive(self, small_world, small_report):
        planted = [
            entry
            for entry in small_report.classified
            if (
                entry.record.domain,
                entry.record.rrtype,
                entry.record.rdata_text,
            )
            in small_world.attacker_identities
        ]
        surviving = [entry for entry in planted if entry.is_suspicious]
        assert len(surviving) >= 0.7 * len(planted)

    def test_no_benign_record_malicious(self, small_world, small_report):
        """No correct/protective/squatter record is labeled malicious."""
        for entry in small_report.malicious:
            identity = (
                entry.record.domain,
                entry.record.rrtype,
                entry.record.rdata_text,
            )
            assert identity in small_world.attacker_identities, entry

    def test_malicious_ips_are_attacker_ips(self, small_world, small_report):
        attacker_ips = small_world.attacker.all_c2_ips()
        for verdict in small_report.ip_verdicts.values():
            if verdict.is_malicious:
                assert verdict.address in attacker_ips


class TestCaseStudyVisibility:
    def test_spf_campaign_detected(self, small_report):
        spf_urs = [
            entry
            for entry in small_report.malicious
            if str(entry.record.domain) == "speedtest.net"
            and entry.record.rrtype == RRType.TXT
        ]
        assert len(spf_urs) == 11  # 8 Namecheap + 3 CSC nameservers

    def test_specter_urs_detected_via_ids_only(self, small_report):
        specter_urs = [
            entry
            for entry in small_report.malicious
            if str(entry.record.domain) in ("ibm.com", "api.github.com")
        ]
        assert specter_urs
        for entry in specter_urs:
            for address in entry.corresponding_ips:
                verdict = small_report.ip_verdicts[address]
                if verdict.is_malicious:
                    assert verdict.label_source == "ids"

    def test_darkiot_urs_detected(self, small_report):
        darkiot_urs = [
            entry
            for entry in small_report.malicious
            if str(entry.record.domain)
            in ("api.gitlab.com", "raw.pastebin.com")
        ]
        assert darkiot_urs


class TestConfigurability:
    def test_intel_only_config(self, small_world):
        hunter = URHunter.from_world(
            small_world, HunterConfig(use_ids=False)
        )
        report = hunter.run(validate=False)
        for verdict in report.ip_verdicts.values():
            assert not verdict.ids_flagged

    def test_high_severity_threshold_shrinks_malicious(self, small_world):
        base = URHunter.from_world(small_world).run(validate=False)
        strict = URHunter.from_world(
            small_world, HunterConfig(min_severity=Severity.HIGH)
        ).run(validate=False)
        assert len(strict.malicious) <= len(base.malicious)

    def test_run_is_deterministic(self, small_world):
        first = URHunter.from_world(small_world).run(validate=False)
        second = URHunter.from_world(small_world).run(validate=False)
        assert first.category_counts() == second.category_counts()
        first_keys = {
            entry.record.key: entry.category
            for entry in first.classified
        }
        second_keys = {
            entry.record.key: entry.category
            for entry in second.classified
        }
        assert first_keys == second_keys


class TestHunterConfigValidation:
    def test_unknown_condition_rejected(self):
        with pytest.raises(ValueError, match="Appendix-B"):
            HunterConfig(enabled_conditions=frozenset({"astrology"}))

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="per_server_interval"):
            HunterConfig(per_server_interval=-1.0)

    def test_empty_query_types_rejected(self):
        with pytest.raises(ValueError, match="query_types"):
            HunterConfig(query_types=())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            HunterConfig(engine="quantum")

    def test_bad_engine_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            HunterConfig(max_concurrency=0)
        with pytest.raises(ValueError, match="retries"):
            HunterConfig(retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            HunterConfig(timeout=0.0)

    def test_engine_policy_carries_knobs(self):
        config = HunterConfig(
            max_concurrency=4,
            retries=1,
            timeout=2.5,
            per_server_interval=130.0,
        )
        policy = config.engine_policy()
        assert policy.max_concurrency == 4
        assert policy.retries == 1
        assert policy.timeout == 2.5
        assert policy.per_server_interval == 130.0


class TestWorldLikeProtocol:
    def test_scenario_world_satisfies_protocol(self, small_world):
        from repro.core import WorldLike

        assert isinstance(small_world, WorldLike)

    def test_engine_choice_reaches_collector(self, small_world):
        hunter = URHunter.from_world(
            small_world, HunterConfig(engine="sequential")
        )
        assert hunter.engine.name == "sequential"
        assert hunter.collector.engine is hunter.engine

    def test_default_engine_is_batched(self, small_world):
        hunter = URHunter.from_world(small_world)
        assert hunter.engine.name == "batched"
