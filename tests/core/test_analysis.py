"""Tests for repro.core.analysis: stage-3 evidence fusion."""

import pytest

from repro.core.analysis import MaliciousBehaviorAnalyzer
from repro.core.records import ClassifiedUR, URCategory, UndelegatedRecord
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.aggregator import ThreatIntelAggregator
from repro.intel.vendor import SecurityVendor
from repro.net.traffic import FlowRecord, Protocol, TrafficCapture
from repro.sandbox.ids import Alert, AlertCategory, Severity
from repro.sandbox.malware import MalwareSample
from repro.sandbox.sandbox import SandboxReport

INTEL_IP = "6.6.6.1"
IDS_IP = "6.6.6.2"
BOTH_IP = "6.6.6.3"
CLEAN_IP = "7.7.7.7"


def _alert(dst, severity=Severity.HIGH, category=AlertCategory.CC):
    flow = FlowRecord(
        timestamp=1.0,
        src="10.0.0.1",
        dst=dst,
        protocol=Protocol.TCP,
        dst_port=4444,
    )
    return Alert(
        sid=1, message="m", category=category, severity=severity, flow=flow
    )


def _sandbox_report(alerts):
    sample = MalwareSample(
        sample_id="s",
        family="F",
        variant="v",
        release_date="2022-01-01",
        behaviour=lambda sample, env: None,
    )
    return SandboxReport(sample=sample, capture=TrafficCapture(), alerts=alerts)


@pytest.fixture
def analyzer():
    vendor = SecurityVendor("VT")
    vendor.flag(INTEL_IP, ["Trojan"])
    vendor.flag(BOTH_IP, ["Botnet"])
    reports = [
        _sandbox_report([_alert(IDS_IP), _alert(BOTH_IP)]),
    ]
    return MaliciousBehaviorAnalyzer(
        ThreatIntelAggregator([vendor]), reports
    )


def suspicious_a(domain, ns, address):
    return ClassifiedUR(
        record=UndelegatedRecord(
            domain=name(domain),
            nameserver_ip=ns,
            provider="P",
            rrtype=RRType.A,
            rdata_text=address,
        ),
        category=URCategory.UNKNOWN,
    )


def suspicious_txt(domain, ns, value):
    return ClassifiedUR(
        record=UndelegatedRecord(
            domain=name(domain),
            nameserver_ip=ns,
            provider="P",
            rrtype=RRType.TXT,
            rdata_text=value,
        ),
        category=URCategory.UNKNOWN,
        txt_category="other",
    )


class TestIpVerdicts:
    def test_intel_only(self, analyzer):
        verdict = analyzer.verdict_for_ip(INTEL_IP)
        assert verdict.label_source == "intel"
        assert verdict.vendor_count == 1
        assert "Trojan" in verdict.tags

    def test_ids_only(self, analyzer):
        verdict = analyzer.verdict_for_ip(IDS_IP)
        assert verdict.label_source == "ids"
        assert AlertCategory.CC in verdict.alert_categories

    def test_both(self, analyzer):
        assert analyzer.verdict_for_ip(BOTH_IP).label_source == "both"

    def test_clean(self, analyzer):
        assert not analyzer.verdict_for_ip(CLEAN_IP).is_malicious

    def test_alert_categories_deduped(self):
        reports = [
            _sandbox_report([_alert(IDS_IP), _alert(IDS_IP), _alert(IDS_IP)])
        ]
        vendor = SecurityVendor("VT")
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]), reports
        )
        verdict = analyzer.verdict_for_ip(IDS_IP)
        assert verdict.alert_categories == (AlertCategory.CC,)

    def test_severity_threshold(self):
        vendor = SecurityVendor("VT")
        reports = [_sandbox_report([_alert(IDS_IP, severity=Severity.LOW)])]
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]),
            reports,
            min_severity=Severity.MEDIUM,
        )
        assert not analyzer.verdict_for_ip(IDS_IP).is_malicious

    def test_connectivity_category_never_counts(self):
        vendor = SecurityVendor("VT")
        reports = [
            _sandbox_report(
                [
                    _alert(
                        IDS_IP,
                        severity=Severity.HIGH,
                        category="Network Connectivity",
                    )
                ]
            )
        ]
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]), reports
        )
        assert not analyzer.verdict_for_ip(IDS_IP).is_malicious


class TestCorrespondingIps:
    def test_a_record_is_its_address(self, analyzer):
        entry = suspicious_a("v.com", "10.0.0.1", INTEL_IP)
        ips = analyzer.corresponding_ips(entry.record, {})
        assert ips == [INTEL_IP]

    def test_txt_embedded_ips(self, analyzer):
        entry = suspicious_txt(
            "v.com", "10.0.0.1", f"v=spf1 ip4:{INTEL_IP} -all"
        )
        ips = analyzer.corresponding_ips(entry.record, {})
        assert ips == [INTEL_IP]

    def test_txt_cohosting_join(self, analyzer):
        a_entry = suspicious_a("v.com", "10.0.0.1", IDS_IP)
        txt_entry = suspicious_txt("v.com", "10.0.0.1", "cmd=blob")
        index = analyzer.build_a_record_index([a_entry, txt_entry])
        ips = analyzer.corresponding_ips(txt_entry.record, index)
        assert ips == [IDS_IP]

    def test_txt_join_requires_same_nameserver(self, analyzer):
        a_entry = suspicious_a("v.com", "10.0.0.1", IDS_IP)
        txt_entry = suspicious_txt("v.com", "10.0.0.2", "cmd=blob")
        index = analyzer.build_a_record_index([a_entry])
        assert analyzer.corresponding_ips(txt_entry.record, index) == []

    def test_txt_join_requires_same_domain(self, analyzer):
        a_entry = suspicious_a("v.com", "10.0.0.1", IDS_IP)
        txt_entry = suspicious_txt("other.com", "10.0.0.1", "cmd=blob")
        index = analyzer.build_a_record_index([a_entry])
        assert analyzer.corresponding_ips(txt_entry.record, index) == []

    def test_embedded_and_cohosted_merged(self, analyzer):
        a_entry = suspicious_a("v.com", "10.0.0.1", IDS_IP)
        txt_entry = suspicious_txt(
            "v.com", "10.0.0.1", f"v=spf1 ip4:{INTEL_IP} -all"
        )
        index = analyzer.build_a_record_index([a_entry])
        ips = analyzer.corresponding_ips(txt_entry.record, index)
        assert ips == [INTEL_IP, IDS_IP]


class TestAnalyze:
    def test_malicious_when_any_ip_malicious(self, analyzer):
        entries = [
            suspicious_a("v.com", "10.0.0.1", INTEL_IP),
            suspicious_a("v.com", "10.0.0.1", CLEAN_IP),
        ]
        result = analyzer.analyze(entries)
        categories = [entry.category for entry in result.classified]
        assert categories == [URCategory.MALICIOUS, URCategory.UNKNOWN]

    def test_txt_without_ip_excluded_and_counted(self, analyzer):
        entries = [suspicious_txt("v.com", "10.0.0.1", "cmd=opaque")]
        result = analyzer.analyze(entries)
        assert result.txt_without_ip == 1
        assert result.classified[0].category is URCategory.UNKNOWN
        assert "no-corresponding-ip" in result.classified[0].reasons

    def test_verdicts_recorded_per_ip(self, analyzer):
        entries = [
            suspicious_a("v.com", "10.0.0.1", INTEL_IP),
            suspicious_a("w.com", "10.0.0.2", IDS_IP),
        ]
        result = analyzer.analyze(entries)
        assert set(result.ip_verdicts) == {INTEL_IP, IDS_IP}
        assert len(result.malicious) == 2
        assert len(result.malicious_ips()) == 2

    def test_reason_records_evidence_source(self, analyzer):
        entries = [suspicious_a("v.com", "10.0.0.1", BOTH_IP)]
        result = analyzer.analyze(entries)
        assert any(
            "both" in reason for reason in result.classified[0].reasons
        )


class TestAblationSwitches:
    def _entries(self):
        return [
            suspicious_a("v.com", "10.0.0.1", INTEL_IP),
            suspicious_a("w.com", "10.0.0.1", IDS_IP),
        ]

    def test_intel_disabled(self):
        vendor = SecurityVendor("VT")
        vendor.flag(INTEL_IP)
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]),
            [_sandbox_report([_alert(IDS_IP)])],
            use_intel=False,
        )
        result = analyzer.analyze(self._entries())
        malicious_ips = {
            entry.record.rdata_text for entry in result.malicious
        }
        assert malicious_ips == {IDS_IP}

    def test_cohost_join_disabled(self):
        vendor = SecurityVendor("VT")
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]),
            [_sandbox_report([_alert(IDS_IP)])],
            use_cohost_join=False,
        )
        entries = [
            suspicious_a("v.com", "10.0.0.1", IDS_IP),
            suspicious_txt("v.com", "10.0.0.1", "cmd=blob"),
        ]
        result = analyzer.analyze(entries)
        # The A UR is still malicious, but the co-hosted TXT gets no
        # corresponding IP without the join.
        assert result.classified[0].category is URCategory.MALICIOUS
        assert result.classified[1].corresponding_ips == ()
        assert result.txt_without_ip == 1

    def test_ids_disabled(self):
        vendor = SecurityVendor("VT")
        vendor.flag(INTEL_IP)
        analyzer = MaliciousBehaviorAnalyzer(
            ThreatIntelAggregator([vendor]),
            [_sandbox_report([_alert(IDS_IP)])],
            use_ids=False,
        )
        result = analyzer.analyze(self._entries())
        malicious_ips = {
            entry.record.rdata_text for entry in result.malicious
        }
        assert malicious_ips == {INTEL_IP}
