"""Tests for repro.core.collector: stage-1 response collection."""

import pytest

from repro.core.collector import (
    DomainTarget,
    NameserverTarget,
    ResponseCollector,
    select_target_nameservers,
)
from repro.core.correctness import CorrectRecordDatabase
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.dns.server import AuthoritativeServer, make_protective_server
from repro.dns.zone import zone_from_records
from repro.intel.ipinfo import IpInfoDatabase
from repro.net.network import SimulatedInternet

NS_A = "10.0.0.1"  # hosts victim.com (delegated) and squat.com (UR)
NS_B = "10.0.0.2"  # protective
NS_C = "10.0.0.3"  # refuses everything


@pytest.fixture
def setup():
    network = SimulatedInternet()
    server_a = AuthoritativeServer("ns-a.host.net")
    server_a.load_zone(
        zone_from_records("victim.com", [("victim.com", "A", "10.1.0.1")])
    )
    server_a.load_zone(
        zone_from_records(
            "squat.com",
            [
                ("squat.com", "A", "10.3.0.66"),
                ("squat.com", "TXT", '"cmd=blob"'),
            ],
        )
    )
    network.register_dns_host(NS_A, server_a)
    network.register_dns_host(
        NS_B, make_protective_server("ns-b.host.net", "203.0.113.250")
    )
    network.register_dns_host(NS_C, AuthoritativeServer("ns-c.host.net"))

    nameservers = [
        NameserverTarget(NS_A, "HostA"),
        NameserverTarget(NS_B, "HostB"),
        NameserverTarget(NS_C, "HostC"),
    ]
    domains = [
        DomainTarget(name("victim.com"), 1),
        DomainTarget(name("squat.com"), 2),
    ]
    collector = ResponseCollector(network)
    return network, collector, nameservers, domains


class TestUrCollection:
    def test_urs_extracted_from_noerror(self, setup):
        _, collector, nameservers, domains = setup
        result = collector.collect_urs(
            nameservers, domains, delegated_to={}
        )
        keys = {(str(record.domain), record.nameserver_ip, record.rrtype)
                for record in result.undelegated}
        assert ("squat.com", NS_A, RRType.A) in keys
        assert ("squat.com", NS_A, RRType.TXT) in keys
        assert ("victim.com", NS_A, RRType.A) in keys
        assert result.timeouts == 0

    def test_delegated_pairs_skipped(self, setup):
        _, collector, nameservers, domains = setup
        urs = collector.collect_urs(
            nameservers,
            domains,
            delegated_to={name("victim.com"): {NS_A}},
        ).undelegated
        assert not any(
            str(record.domain) == "victim.com"
            and record.nameserver_ip == NS_A
            for record in urs
        )
        # squat.com at NS_A is still collected.
        assert any(
            str(record.domain) == "squat.com" for record in urs
        )

    def test_refused_servers_yield_nothing(self, setup):
        _, collector, nameservers, domains = setup
        result = collector.collect_urs(
            [NameserverTarget(NS_C, "HostC")], domains, {}
        )
        assert result.undelegated == []

    def test_protective_answers_collected_as_urs(self, setup):
        _, collector, nameservers, domains = setup
        urs = collector.collect_urs(
            [NameserverTarget(NS_B, "HostB")], domains, {}
        ).undelegated
        # Both domains answered with the same protective A + TXT.
        a_records = [r for r in urs if r.rrtype == RRType.A]
        assert len(a_records) == 2
        assert all(r.rdata_text == "203.0.113.250" for r in a_records)

    def test_dead_server_counts_timeouts(self, setup):
        network, collector, _, domains = setup
        network.set_online(NS_A, False)
        result = collector.collect_urs(
            [NameserverTarget(NS_A, "HostA")], domains, {}
        )
        assert result.undelegated == []
        assert result.timeouts == result.queries_sent

    def test_unique_urs_deduped(self, setup):
        _, collector, nameservers, domains = setup
        urs = collector.collect_urs(nameservers, domains, {}).undelegated
        assert len({record.key for record in urs}) == len(urs)

    def test_provider_attached(self, setup):
        _, collector, nameservers, domains = setup
        urs = collector.collect_urs(nameservers, domains, {}).undelegated
        providers = {record.provider for record in urs}
        assert "HostA" in providers


class TestProtectiveFingerprinting:
    def test_protective_server_fingerprinted(self, setup):
        _, collector, nameservers, _ = setup
        fingerprints = collector.collect_protective_records(nameservers)
        assert fingerprints[NS_B].matches(RRType.A, "203.0.113.250")

    def test_normal_server_empty_fingerprint(self, setup):
        _, collector, nameservers, _ = setup
        fingerprints = collector.collect_protective_records(nameservers)
        assert not fingerprints[NS_A].records
        assert not fingerprints[NS_C].records

    def test_probe_domain_used(self, setup):
        network, collector, nameservers, _ = setup
        collector.collect_protective_records(
            nameservers, probe_domain="my-own-probe.net"
        )
        probed = [
            flow
            for flow in network.capture.dns_lookups()
            if flow.metadata.get("qname") == "my-own-probe.net"
        ]
        assert probed


class TestCorrectRecordCollection:
    def test_records_folded_into_database(self, setup):
        network, collector, _, domains = setup
        from repro.dns.resolver import RecursiveResolver
        from repro.hosting.registry import DnsRoot

        # A tiny recursive path: register a root and delegate victim.com
        # to an in-bailiwick nameserver so the TLD carries glue.
        root = DnsRoot(network)
        root.register("victim.com", "o")
        root.delegate("victim.com", [(name("ns-a.hostco.com"), NS_A)])
        resolver = RecursiveResolver(
            "10.50.0.1", network, root.root_addresses
        )
        network.register_dns_host("10.50.0.1", resolver)

        ipinfo = IpInfoDatabase()
        database = CorrectRecordDatabase(ipinfo)
        successes = collector.collect_correct_records(
            [DomainTarget(name("victim.com"), 1)],
            ["10.50.0.1"],
            database,
        )
        assert successes >= 1
        assert "10.1.0.1" in database.profile("victim.com").ips

    def test_dead_resolver_tolerated(self, setup):
        _, collector, _, domains = setup
        database = CorrectRecordDatabase(IpInfoDatabase())
        successes = collector.collect_correct_records(
            domains, ["10.200.0.1"], database
        )
        assert successes == 0


class TestRateLimiting:
    def test_interval_advances_virtual_clock(self, setup):
        network, _, nameservers, domains = setup
        collector = ResponseCollector(
            network, scanner_ip="203.0.113.99", per_server_interval=130.0
        )
        before = network.now
        collector.collect_urs(
            [NameserverTarget(NS_A, "HostA")], domains, {}
        )
        # 4 queries to one server -> at least 3 inter-query gaps.
        assert network.now - before >= 3 * 130.0

    def test_no_interval_no_extra_delay(self, setup):
        network, collector, _, domains = setup
        before = network.now
        collector.collect_urs(
            [NameserverTarget(NS_A, "HostA")], domains, {}
        )
        assert network.now - before < 1.0


class TestTypedCollectionResult:
    def test_tuple_unpacking_shim_is_gone(self, setup):
        """The deprecated 4-tuple unpacking was removed: the typed
        result is deliberately not iterable."""
        _, collector, nameservers, domains = setup
        result = collector.collect_urs(nameservers, domains, {})
        with pytest.raises(TypeError):
            iter(result)
        assert not hasattr(result, "legacy_tuple")

    def test_wire_counters_consistent(self, setup):
        _, collector, nameservers, domains = setup
        result = collector.collect_urs(nameservers, domains, {})
        assert result.undelegated
        assert result.queries_sent >= result.responses_seen > 0
        assert result.timeouts == (
            result.queries_sent - result.responses_seen
        )

    def test_collect_all_folds_everything(self, setup):
        network, collector, nameservers, domains = setup
        database = CorrectRecordDatabase(IpInfoDatabase())
        result = collector.collect_all(
            nameservers,
            domains,
            delegated_to={},
            open_resolver_ips=[],
            correct_db=database,
        )
        assert result.correct_db is database
        assert set(result.protective) == {NS_A, NS_B, NS_C}
        assert result.metrics is not None
        assert result.metrics.stage("ur").queries > 0
        assert result.metrics.stage("protective").queries > 0

    def test_collect_all_pins_classification_epoch(self, setup):
        """The classification clock is pinned after the protective +
        correct collections, before the UR scan starts."""
        network, collector, nameservers, domains = setup
        database = CorrectRecordDatabase(IpInfoDatabase())
        result = collector.collect_all(
            nameservers,
            domains,
            delegated_to={},
            open_resolver_ips=[],
            correct_db=database,
        )
        assert 0.0 < result.classification_epoch <= network.now


class TestQueryTypesApi:
    def test_query_types_alias_is_gone(self):
        """ResponseCollector.QUERY_TYPES (deprecated since PR 1) was
        removed; collector.query_types is the only spelling."""
        assert not hasattr(ResponseCollector, "QUERY_TYPES")

    def test_query_types_tracks_override(self, setup):
        network, _, _, _ = setup
        collector = ResponseCollector(
            network, query_types=(RRType.A, RRType.TXT, RRType.MX)
        )
        assert collector.query_types == (RRType.A, RRType.TXT, RRType.MX)


class TestEngineSelection:
    def test_default_engine_is_batched(self, setup):
        _, collector, _, _ = setup
        assert collector.engine.name == "batched"

    def test_engine_name_selects_implementation(self, setup):
        network, _, _, _ = setup
        collector = ResponseCollector(network, engine_name="sequential")
        assert collector.engine.name == "sequential"

    def test_explicit_engine_wins(self, setup):
        from repro.engine import SequentialEngine

        network, _, _, _ = setup
        engine = SequentialEngine(network, "203.0.113.53")
        collector = ResponseCollector(network, engine=engine)
        assert collector.engine is engine


class TestNameserverSelection:
    def test_threshold_applied(self):
        counts = {"10.0.0.1": 100, "10.0.0.2": 10}
        info = {
            "10.0.0.1": ("BigHost", name("ns1.big.net")),
            "10.0.0.2": ("SmallHost", None),
        }
        selected = select_target_nameservers(counts, info, min_hosted=50)
        assert [target.address for target in selected] == ["10.0.0.1"]
        assert selected[0].provider == "BigHost"

    def test_missing_info_defaults(self):
        selected = select_target_nameservers(
            {"10.0.0.9": 60}, {}, min_hosted=50
        )
        assert selected[0].provider == "unknown"
