"""Tests for repro.core.correctness: the Appendix-B conditions."""

import pytest

from repro.core.correctness import (
    ALL_CONDITIONS,
    COND_AS,
    COND_CERT,
    COND_GEO,
    COND_HTTP,
    COND_IP,
    COND_PDNS,
    CorrectRecordDatabase,
    UniformityChecker,
)
from repro.core.records import UndelegatedRecord
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.ipinfo import HttpPage, IpInfoDatabase
from repro.intel.pdns import PassiveDnsStore

DOMAIN = "victim.com"
LEGIT_IP = "10.1.0.1"  # HostCo US, cert "victim.com Inc"
SAME_AS_IP = "10.1.0.2"  # same prefix, unseen by resolvers
SAME_GEO_IP = "10.2.0.1"  # other AS, same country
FOREIGN_IP = "10.3.0.1"  # attacker AS / country
PARKED_IP = "10.3.0.2"  # attacker prefix, parking page
HISTORIC_IP = "10.4.0.1"  # previous hosting, only in PDNS


@pytest.fixture
def ipinfo():
    db = IpInfoDatabase()
    db.register_prefix("10.1.0.0/16", 64501, "HostCo", "US")
    db.register_prefix("10.2.0.0/16", 64502, "OtherHost", "US")
    db.register_prefix("10.3.0.0/16", 65001, "BulletProof", "RU")
    db.register_prefix("10.4.0.0/16", 64503, "OldHost", "DE")
    db.register_host(LEGIT_IP, cert_org="victim.com Inc")
    db.register_host(SAME_GEO_IP, cert_org="unrelated org")
    db.register_host(PARKED_IP, http=HttpPage.parked())
    return db


@pytest.fixture
def database(ipinfo):
    db = CorrectRecordDatabase(ipinfo)
    db.observe_a(DOMAIN, LEGIT_IP)
    db.observe_txt(DOMAIN, "v=spf1 ip4:10.1.0.1 -all")
    return db


@pytest.fixture
def pdns():
    store = PassiveDnsStore()
    store.observe(DOMAIN, RRType.A, HISTORIC_IP, timestamp=100.0)
    store.observe(DOMAIN, RRType.TXT, "old-verification=abc", timestamp=100.0)
    return store


def a_record(address, domain=DOMAIN):
    return UndelegatedRecord(
        domain=name(domain),
        nameserver_ip="10.99.0.1",
        provider="TestHost",
        rrtype=RRType.A,
        rdata_text=address,
    )


def txt_record(value, domain=DOMAIN):
    return UndelegatedRecord(
        domain=name(domain),
        nameserver_ip="10.99.0.1",
        provider="TestHost",
        rrtype=RRType.TXT,
        rdata_text=value,
    )


class TestConditionsFire:
    def test_ip_subset(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(a_record(LEGIT_IP), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_IP

    def test_as_subset(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(a_record(SAME_AS_IP), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_AS

    def test_geo_subset(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(a_record(SAME_GEO_IP), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_GEO

    def test_cert_subset(self, database, pdns, ipinfo):
        # An IP in a foreign AS/country but serving the domain's cert
        # (e.g. a new CDN POP).
        ipinfo.register_host("10.3.0.9", cert_org="victim.com Inc")
        checker = UniformityChecker(
            database, pdns, enabled_conditions=frozenset({COND_CERT})
        )
        verdict = checker.check(a_record("10.3.0.9"), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_CERT

    def test_pdns_history(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(a_record(HISTORIC_IP), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_PDNS

    def test_http_keyword_parked(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(a_record(PARKED_IP), now=200.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_HTTP


class TestAttackerRecordsSurvive:
    def test_foreign_ip_not_excluded(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        assert not checker.check(a_record(FOREIGN_IP), now=200.0).is_correct

    def test_unknown_domain_profile_empty(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(
            a_record(FOREIGN_IP, domain="other.com"), now=200.0
        )
        assert not verdict.is_correct

    def test_unknown_asn_never_matches_as_condition(self, ipinfo, pdns):
        # Two unknown-prefix IPs share ASN 0; that must not count as
        # AS uniformity.
        db = CorrectRecordDatabase(ipinfo)
        db.observe_a(DOMAIN, "172.16.0.1")
        checker = UniformityChecker(
            db, pdns, enabled_conditions=frozenset({COND_AS})
        )
        assert not checker.check(a_record("172.17.0.1"), now=200.0).is_correct


class TestTxtRecords:
    def test_exact_match_excluded(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(
            txt_record("v=spf1 ip4:10.1.0.1 -all"), now=200.0
        )
        assert verdict.is_correct

    def test_pdns_txt_history(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(
            txt_record("old-verification=abc"), now=200.0
        )
        assert verdict.is_correct
        assert verdict.matched_condition == COND_PDNS

    def test_masquerading_spf_survives(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        verdict = checker.check(
            txt_record("v=spf1 ip4:10.3.0.66 -all"), now=200.0
        )
        assert not verdict.is_correct


class TestAblation:
    def test_disabling_condition_stops_exclusion(self, database, pdns):
        without_as = ALL_CONDITIONS - {COND_AS, COND_GEO}
        checker = UniformityChecker(
            database, pdns, enabled_conditions=without_as
        )
        assert not checker.check(a_record(SAME_AS_IP), now=200.0).is_correct

    def test_unknown_condition_rejected(self, database):
        with pytest.raises(ValueError):
            UniformityChecker(
                database, enabled_conditions=frozenset({"bogus"})
            )

    def test_no_pdns_store_skips_condition(self, database):
        checker = UniformityChecker(database, pdns=None)
        assert not checker.check(a_record(HISTORIC_IP), now=200.0).is_correct

    def test_other_rrtypes_never_correct(self, database, pdns):
        checker = UniformityChecker(database, pdns)
        record = UndelegatedRecord(
            domain=name(DOMAIN),
            nameserver_ip="10.99.0.1",
            provider="TestHost",
            rrtype=RRType.MX,
            rdata_text="10 mail.victim.com.",
        )
        assert not checker.check(record, now=200.0).is_correct


class TestDatabase:
    def test_profile_accumulates(self, database, ipinfo):
        profile = database.profile(DOMAIN)
        assert LEGIT_IP in profile.ips
        assert 64501 in profile.asns
        assert "US" in profile.countries
        assert "victim.com Inc" in profile.cert_orgs

    def test_has_profile(self, database):
        assert database.has_profile(DOMAIN)
        assert not database.has_profile("empty.com")

    def test_domains_sorted(self, database):
        database.observe_a("aaa.com", LEGIT_IP)
        domains = database.domains()
        assert domains == sorted(domains)
