"""Tests for repro.core.suspicion: stage-2 exclusion pipeline."""

import pytest

from repro.core.collector import ProtectiveFingerprint
from repro.core.correctness import (
    CorrectRecordDatabase,
    UniformityChecker,
)
from repro.core.records import URCategory, UndelegatedRecord
from repro.core.suspicion import SuspicionFilter
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.ipinfo import IpInfoDatabase

PROTECTIVE_IP = "203.0.113.250"
LEGIT_IP = "10.1.0.1"
EVIL_IP = "10.3.0.66"


@pytest.fixture
def suspicion_filter():
    ipinfo = IpInfoDatabase()
    ipinfo.register_prefix("10.1.0.0/16", 64501, "HostCo", "US")
    ipinfo.register_prefix("10.3.0.0/16", 65001, "BulletProof", "RU")
    database = CorrectRecordDatabase(ipinfo)
    database.observe_a("victim.com", LEGIT_IP)
    database.observe_txt("victim.com", "v=spf1 ip4:10.1.0.1 -all")
    checker = UniformityChecker(database)
    protective = {
        "10.99.0.1": ProtectiveFingerprint(
            nameserver_ip="10.99.0.1",
            records={
                (RRType.A, PROTECTIVE_IP),
                (RRType.TXT, "v=parked; not hosted here"),
            },
        )
    }
    return SuspicionFilter(checker, protective)


def ur(rdata, rrtype=RRType.A, ns="10.99.0.1", domain="victim.com"):
    return UndelegatedRecord(
        domain=name(domain),
        nameserver_ip=ns,
        provider="P",
        rrtype=rrtype,
        rdata_text=rdata,
    )


class TestClassification:
    def test_protective_match(self, suspicion_filter):
        outcome = suspicion_filter.classify([ur(PROTECTIVE_IP)])
        assert outcome.classified[0].category is URCategory.PROTECTIVE

    def test_protective_txt_match(self, suspicion_filter):
        outcome = suspicion_filter.classify(
            [ur("v=parked; not hosted here", rrtype=RRType.TXT)]
        )
        assert outcome.classified[0].category is URCategory.PROTECTIVE

    def test_protective_only_on_matching_nameserver(self, suspicion_filter):
        outcome = suspicion_filter.classify(
            [ur(PROTECTIVE_IP, ns="10.99.0.9")]
        )
        assert outcome.classified[0].category is not URCategory.PROTECTIVE

    def test_correct_record_excluded(self, suspicion_filter):
        outcome = suspicion_filter.classify([ur(LEGIT_IP)])
        assert outcome.classified[0].category is URCategory.CORRECT

    def test_protective_checked_before_correct(self, suspicion_filter):
        # A protective record that also happens to satisfy a condition
        # must be labeled protective.
        outcome = suspicion_filter.classify([ur(PROTECTIVE_IP)])
        assert outcome.classified[0].reasons == ("protective-fingerprint",)

    def test_attacker_record_survives_as_unknown(self, suspicion_filter):
        outcome = suspicion_filter.classify([ur(EVIL_IP)])
        entry = outcome.classified[0]
        assert entry.category is URCategory.UNKNOWN
        assert entry.is_suspicious

    def test_txt_category_attached(self, suspicion_filter):
        outcome = suspicion_filter.classify(
            [ur("v=spf1 ip4:10.3.0.66 -all", rrtype=RRType.TXT)]
        )
        assert outcome.classified[0].txt_category == "spf"

    def test_outcome_partitions(self, suspicion_filter):
        outcome = suspicion_filter.classify(
            [ur(PROTECTIVE_IP), ur(LEGIT_IP), ur(EVIL_IP)]
        )
        assert len(outcome.protective) == 1
        assert len(outcome.correct) == 1
        assert len(outcome.suspicious) == 1
        assert outcome.counts() == {
            "protective": 1,
            "correct": 1,
            "unknown": 1,
        }


class TestFalseNegativeValidation:
    def test_delegated_records_all_excluded(self, suspicion_filter):
        delegated = [ur(LEGIT_IP), ur("v=spf1 ip4:10.1.0.1 -all", RRType.TXT)]
        assert suspicion_filter.false_negative_rate(delegated) == 0.0

    def test_rate_reflects_survivors(self, suspicion_filter):
        mixed = [ur(LEGIT_IP), ur(EVIL_IP)]
        assert suspicion_filter.false_negative_rate(mixed) == 0.5

    def test_empty_input(self, suspicion_filter):
        assert suspicion_filter.false_negative_rate([]) == 0.0
