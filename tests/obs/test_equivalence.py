"""Batch ↔ stream event-stream equivalence (the acceptance invariant).

The deterministic trace section must be **byte-identical** between
``--execution batch`` and ``--execution stream``, and across stage-2
worker counts and channel depths, for the same scenario and fault
schedule.  Wall-clock and occupancy observations ride in the timing
section, which is exempt.
"""

import pytest

from repro.core import HunterConfig, URHunter
from repro.intel.aggregator import ThreatIntelAggregator
from repro.obs import RunTrace
from repro.pipeline import (
    CheckpointStore,
    FaultPlan,
    FlakyPassiveDNS,
    FlakyVendor,
    PipelineRunner,
)
from repro.scenario import build_world, small_config

SEED = 7
#: one shared chaos schedule — both modes must see identical faults
FAULTS = dict(loss=0.15, pdns=0.35, intel=0.25)


def run_trace(
    execution="batch",
    workers=1,
    depth=64,
    loss=0.0,
    pdns=0.0,
    intel=0.0,
):
    """One full measurement; returns the deterministic JSONL lines."""
    world = build_world(small_config(seed=SEED))
    if loss:
        world.network.inject_faults(loss_rate=loss, seed=SEED)
    config = HunterConfig(
        execution=execution, stage2_workers=workers, channel_depth=depth
    )
    hunter = URHunter.from_world(world, config)
    trace = RunTrace()
    hunter.attach_trace(trace)
    if pdns:
        hunter.pdns = FlakyPassiveDNS(
            world.pdns, FaultPlan(seed=3, error_rate=pdns)
        )
    if intel:
        hunter.intel = ThreatIntelAggregator(
            [
                FlakyVendor(
                    vendor,
                    FaultPlan(seed=3 + index, error_rate=intel),
                )
                for index, vendor in enumerate(world.vendors)
            ]
        )
    hunter.run()
    return trace.deterministic_lines()


@pytest.fixture(scope="module")
def batch_clean():
    return run_trace(execution="batch")


@pytest.fixture(scope="module")
def batch_faulted():
    return run_trace(execution="batch", **FAULTS)


class TestCleanEquivalence:
    def test_trace_is_nonempty_and_spans_all_stages(self, batch_clean):
        text = "\n".join(batch_clean)
        for marker in (
            "run.start",
            "stage1-collect",
            "stage2-exclude",
            "stage3-analyze",
            "collect.phase",
            "run.end",
        ):
            assert marker in text

    def test_stream_matches_batch(self, batch_clean):
        assert (
            run_trace(execution="stream", workers=4, depth=5)
            == batch_clean
        )

    def test_stream_depth_invariant(self, batch_clean):
        assert run_trace(execution="stream", depth=1) == batch_clean

    def test_batch_worker_invariant(self, batch_clean):
        assert run_trace(execution="batch", workers=4) == batch_clean


class TestFaultedEquivalence:
    def test_faults_actually_degrade(self, batch_faulted):
        text = "\n".join(batch_faulted)
        assert "source.degraded" in text

    def test_stream_matches_batch_under_faults(self, batch_faulted):
        assert (
            run_trace(execution="stream", workers=4, depth=7, **FAULTS)
            == batch_faulted
        )

    def test_stream_worker_and_depth_invariant_under_faults(
        self, batch_faulted
    ):
        assert (
            run_trace(execution="stream", workers=1, depth=64, **FAULTS)
            == batch_faulted
        )


def runner_trace(
    directory,
    execution,
    checkpoint_every=0,
    workers=1,
    depth=64,
):
    """One checkpointed run through PipelineRunner; deterministic lines."""
    world = build_world(small_config(seed=SEED))
    config = HunterConfig(
        execution=execution, stage2_workers=workers, channel_depth=depth
    )
    hunter = URHunter.from_world(world, config)
    trace = RunTrace()
    hunter.attach_trace(trace)
    runner = PipelineRunner(
        hunter,
        store=CheckpointStore(str(directory)),
        scenario_fingerprint="equivalence",
        checkpoint_every=checkpoint_every,
    )
    runner.run()
    return trace.deterministic_lines()


class TestRunnerEquivalence:
    """The runner adds run/checkpoint provenance events; the invariant
    must survive them (fingerprints exclude the execution knobs, and
    segment events only exist with ``checkpoint_every > 0``)."""

    def test_batch_vs_stream_with_store(self, tmp_path):
        batch = runner_trace(tmp_path / "batch", "batch")
        stream = runner_trace(
            tmp_path / "stream", "stream", workers=4, depth=9
        )
        assert batch == stream
        assert any("checkpoint.save" in line for line in batch)

    def test_stream_segments_invariant_across_depth_and_workers(
        self, tmp_path
    ):
        first = runner_trace(
            tmp_path / "a",
            "stream",
            checkpoint_every=50,
            depth=3,
            workers=1,
        )
        second = runner_trace(
            tmp_path / "b",
            "stream",
            checkpoint_every=50,
            depth=64,
            workers=4,
        )
        assert first == second
        assert any("segment.save" in line for line in first)
