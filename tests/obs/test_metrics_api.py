"""The one MetricsSnapshot protocol across all four metric holders."""

import pytest

from repro.core import URHunter
from repro.core.parallel import Stage2Metrics
from repro.engine.metrics import ScanMetrics
from repro.flow.graph import ChannelStats, FlowMetrics, FlowStats
from repro.obs.metrics import (
    MetricRegistry,
    MetricsSnapshot,
    build_metrics_document,
)
from repro.pipeline.resilience import SourceGuard, SourcesSnapshot
from repro.scenario import build_world, small_config


@pytest.fixture(scope="module")
def report():
    world = build_world(small_config(seed=7))
    return URHunter.from_world(world).run()


class TestProtocolConformance:
    """Every retrofitted holder satisfies the runtime-checkable protocol."""

    def test_scan_metrics(self):
        assert isinstance(ScanMetrics(), MetricsSnapshot)
        assert ScanMetrics.name == "scan-engine"

    def test_stage2_metrics(self):
        assert isinstance(Stage2Metrics(), MetricsSnapshot)
        assert Stage2Metrics.name == "stage2-exclusion"

    def test_sources_snapshot(self):
        assert isinstance(SourcesSnapshot(), MetricsSnapshot)
        assert SourcesSnapshot.name == "sources"

    def test_flow_metrics(self):
        assert isinstance(FlowMetrics(), MetricsSnapshot)
        assert FlowMetrics.name == "flow-channels"

    def test_to_dict_returns_plain_data(self, report):
        for snapshot in (report.scan_metrics, report.stage2_metrics):
            data = snapshot.to_dict()
            assert isinstance(data, dict) and data


class TestMerge:
    def test_stage2_merge_sums_counters(self):
        a = Stage2Metrics(records=10, cache_hits=4, cache_misses=6,
                          distinct_keys=6, workers=1, memoized=True)
        b = Stage2Metrics(records=5, cache_hits=1, cache_misses=4,
                          distinct_keys=4, workers=4, memoized=True)
        a.merge(b)
        assert a.records == 15
        assert a.cache_hits == 5
        assert a.workers == 4  # max, not sum

    def test_sources_merge_folds_ledgers(self):
        guard_a, guard_b = SourceGuard(), SourceGuard()
        guard_a.health("pdns").calls = 3
        guard_b.health("pdns").calls = 2
        guard_b.health("ipinfo").calls = 1
        merged = guard_a.metrics_snapshot()
        merged.merge(guard_b.metrics_snapshot())
        assert merged.sources["pdns"].calls == 5
        assert merged.sources["ipinfo"].calls == 1

    def test_flow_merge_keeps_max_occupancy(self):
        a = FlowMetrics(channels={"records": {
            "depth": 4, "max_occupancy": 2, "total": 10}})
        b = FlowMetrics(channels={"records": {
            "depth": 4, "max_occupancy": 4, "total": 5}})
        a.merge(b)
        assert a.channels["records"] == {
            "depth": 4, "max_occupancy": 4, "total": 15,
        }


class TestRegistry:
    def test_registration_is_validated(self):
        registry = MetricRegistry()
        with pytest.raises(TypeError, match="does not implement"):
            registry.register(object())

    def test_get_by_name(self):
        registry = MetricRegistry()
        scan = registry.register(ScanMetrics())
        assert registry.get("scan-engine") is scan
        assert registry.get("nope") is None

    def test_render_matches_legacy_report_blocks(self, report):
        """The single renderer reproduces the bespoke summary() layout
        byte for byte — the report's summary() text is a CI-diffed
        surface and must not move."""
        expected = [
            "scan engine metrics:",
            report.scan_metrics.summary(indent="  "),
            "stage-2 exclusion metrics:",
            report.stage2_metrics.summary(indent="  "),
        ]
        lines = report.metric_registry().render_lines(indent="  ")
        assert lines == expected

    def test_report_summary_embeds_registry_rendering(self, report):
        rendered = "\n".join(
            report.metric_registry().render_lines(indent="  ")
        )
        assert rendered in report.summary()

    def test_generic_heading_fallback(self):
        class Bare:
            name = "bare"

            def to_dict(self):
                return {}

            def merge(self, other):
                pass

            def summary(self, indent=""):
                return f"{indent}(nothing)"

        registry = MetricRegistry()
        registry.register(Bare())
        assert registry.render_lines() == ["bare metrics:", "  (nothing)"]

    def test_registry_to_dict_keys_by_snapshot_name(self, report):
        registry = report.metric_registry()
        data = registry.to_dict()
        assert set(data) == {"scan-engine", "stage2-exclusion"}


class TestMetricsDocument:
    def test_sections_split(self, report):
        document = build_metrics_document(
            report,
            fingerprint="f" * 8,
            execution="batch",
            stage2_workers=1,
            channel_depth=64,
        )
        assert set(document) == {"format", "deterministic", "timing"}
        deterministic = document["deterministic"]
        assert deterministic["fingerprint"] == "f" * 8
        assert deterministic["report"]["classified"] == len(
            report.classified
        )
        assert "scan_engine" in deterministic
        assert "stage2_exclusion" in deterministic
        # wall-clock figures live only in the timing section
        assert "wall_s" not in str(deterministic)
        assert "wall_s" in str(document["timing"])

    def test_timing_context_records_execution_knobs(self, report):
        document = build_metrics_document(
            report, execution="stream", stage2_workers=4, channel_depth=8
        )
        assert document["timing"]["context"] == {
            "execution": "stream",
            "stage2_workers": 4,
            "channel_depth": 8,
        }

    def test_flow_channels_enter_timing_only(self, report):
        flow = FlowMetrics.from_stats(
            FlowStats(channels=(ChannelStats("records", 4, 2, 9),))
        )
        document = build_metrics_document(report, flow_metrics=flow)
        assert document["timing"]["flow_channels"] == {
            "records": {"depth": 4, "max_occupancy": 2, "total": 9}
        }
        assert "flow_channels" not in document["deterministic"]

    def test_degraded_sources_absent_on_clean_run(self, report):
        document = build_metrics_document(report)
        assert "sources" not in document["deterministic"]
