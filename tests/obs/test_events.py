"""Unit tests for the run-event bus (`repro.obs.events`)."""

import json

from repro.obs.events import (
    STAGE1,
    STAGE2,
    STAGE3,
    TRACE_FORMAT_VERSION,
    RunTrace,
    TraceEvent,
    run_end_fields,
)


class TestCanonicalOrdering:
    def test_run_start_sorts_first_regardless_of_emission(self):
        trace = RunTrace()
        trace.emit("collect.phase", stage=STAGE1, phase="ur")
        trace.emit("run.start", fingerprint="abc")
        events = trace.events()
        assert events[0]["event"] == "run.start"
        assert events[1]["event"] == "collect.phase"

    def test_run_end_family_sorts_last(self):
        trace = RunTrace()
        trace.emit("run.end", status="clean")
        trace.emit("stage.end", stage=STAGE3)
        names = [event["event"] for event in trace.events()]
        assert names == ["stage.end", "run.end"]

    def test_stages_sort_in_pipeline_order(self):
        trace = RunTrace()
        trace.emit("stage.start", stage=STAGE3)
        trace.emit("stage.start", stage=STAGE1)
        trace.emit("stage.start", stage=STAGE2)
        stages = [event["stage"] for event in trace.events()]
        assert stages == [STAGE1, STAGE2, STAGE3]

    def test_sub_ranks_within_one_stage(self):
        """Open markers < body < stage.end < checkpoint.save, however
        they were emitted chronologically (the streaming mode emits the
        logical span markers after the flow drains)."""
        trace = RunTrace()
        trace.emit("source.degraded", stage=STAGE2, source="pdns")
        trace.emit("checkpoint.save", stage=STAGE2)
        trace.emit("stage.end", stage=STAGE2)
        trace.emit("stage.start", stage=STAGE2)
        names = [event["event"] for event in trace.events()]
        assert names == [
            "stage.start",
            "source.degraded",
            "stage.end",
            "checkpoint.save",
        ]

    def test_emission_order_breaks_ties_within_a_cell(self):
        trace = RunTrace()
        trace.emit("breaker.trip", stage=STAGE1, server="a")
        trace.emit("breaker.trip", stage=STAGE1, server="b")
        servers = [event["server"] for event in trace.events()]
        assert servers == ["a", "b"]

    def test_resume_markers_rank_as_span_open(self):
        trace = RunTrace()
        trace.emit("segment.replay", stage=STAGE2, segments=2)
        trace.emit("checkpoint.load", stage=STAGE2)
        trace.emit("stage.resumed", stage=STAGE2)
        names = [event["event"] for event in trace.events()]
        # load + resumed are span-open (rank 0); replay is a body event
        assert names == [
            "checkpoint.load",
            "stage.resumed",
            "segment.replay",
        ]

    def test_unknown_stage_ranks_between_stage3_and_run_end(self):
        trace = RunTrace()
        trace.emit("run.end")
        trace.emit("custom.event", stage="weird-stage")
        trace.emit("stage.end", stage=STAGE3)
        names = [event["event"] for event in trace.events()]
        assert names == ["stage.end", "custom.event", "run.end"]

    def test_seq_is_renumbered_after_sorting(self):
        trace = RunTrace()
        trace.emit("stage.end", stage=STAGE1)
        trace.emit("run.start")
        assert [event["seq"] for event in trace.events()] == [0, 1]


class TestTimingSeparation:
    def test_timing_events_never_enter_deterministic_stream(self):
        trace = RunTrace()
        trace.emit("run.start")
        trace.emit_timing("flow.channels", channels={})
        assert len(trace.events()) == 1
        assert len(trace.timing_events()) == 1

    def test_timing_events_are_marked(self):
        trace = RunTrace()
        trace.emit_timing("flow.stalled", stuck="collector")
        (event,) = trace.timing_events()
        assert event["section"] == "timing"

    def test_deterministic_lines_carry_no_section_key(self):
        trace = RunTrace()
        trace.emit("run.start")
        for line in trace.deterministic_lines():
            assert "section" not in json.loads(line)

    def test_full_document_orders_timing_after_deterministic(self):
        trace = RunTrace()
        trace.emit_timing("flow.channels")
        trace.emit("run.start")
        lines = trace.lines()
        kinds = [
            "timing" if "section" in json.loads(line) else "det"
            for line in lines
        ]
        assert kinds == ["det", "det", "timing"]


class TestSink:
    def test_finalize_writes_jsonl(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        trace = RunTrace(path)
        trace.emit("run.start", fingerprint="f")
        written = trace.finalize()
        assert written == path
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {
            "event": "trace.header",
            "format": TRACE_FORMAT_VERSION,
        }
        assert json.loads(lines[1])["event"] == "run.start"

    def test_finalize_is_idempotent_and_rewrites(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = RunTrace(path)
        trace.emit("run.start")
        trace.finalize()
        first = path.read_text()
        trace.finalize()
        assert path.read_text() == first
        trace.emit("run.end")
        trace.finalize()
        assert "run.end" in path.read_text()

    def test_finalize_without_sink_is_a_noop(self):
        assert RunTrace().finalize() is None


class TestFieldSanitization:
    def test_non_finite_floats_become_null(self):
        trace = RunTrace()
        trace.emit("x", p99=float("inf"), nan=float("nan"), ok=1.5)
        (event,) = trace.events()
        assert event["p99"] is None
        assert event["nan"] is None
        assert event["ok"] == 1.5

    def test_sets_serialize_sorted(self):
        trace = RunTrace()
        trace.emit("x", names=frozenset({"b", "a", "c"}))
        (event,) = trace.events()
        assert event["names"] == ["a", "b", "c"]

    def test_unknown_objects_fall_back_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"

        trace = RunTrace()
        trace.emit("x", thing=Odd())
        (event,) = trace.events()
        assert event["thing"] == "odd!"

    def test_every_line_is_strict_json(self):
        trace = RunTrace()
        trace.emit("x", bad=float("-inf"), nested={"a": (1, 2)})
        for line in trace.lines():
            json.loads(line)  # must not raise


class TestCounters:
    def test_counters_count_deterministic_events_only(self):
        trace = RunTrace()
        trace.emit("stage.start", stage=STAGE1)
        trace.emit("stage.start", stage=STAGE2)
        trace.emit_timing("flow.channels")
        assert trace.counters() == {"stage.start": 2}


class TestRunEndFields:
    def test_unaccounted_is_zero_when_arithmetic_balances(self):
        class Metrics:
            queries = 10
            responses = 7
            timeouts = 3
            giveups = 1
            skipped = 0

        class Report:
            scan_metrics = Metrics()
            is_degraded = False
            classified = [1, 2]
            suspicious = [1]
            queries_sent = 10
            responses_seen = 7
            timeouts = 3

        fields = run_end_fields(Report())
        assert fields["unaccounted"] == 0
        assert fields["status"] == "clean"
        assert fields["giveups"] == 1

    def test_without_scan_metrics_report_counters_are_used(self):
        class Report:
            scan_metrics = None
            is_degraded = True
            classified = []
            suspicious = []
            queries_sent = 5
            responses_seen = 4
            timeouts = 0

        fields = run_end_fields(Report())
        assert fields["status"] == "degraded"
        assert fields["unaccounted"] == 1

    def test_explicit_status_wins(self):
        class Report:
            scan_metrics = None
            is_degraded = False
            classified = []
            suspicious = []
            queries_sent = 0
            responses_seen = 0
            timeouts = 0

        assert run_end_fields(Report(), status="stopped")["status"] == "stopped"


class TestTraceEvent:
    def test_to_dict_omits_stage_when_unset(self):
        event = TraceEvent("run.start", None, {"a": 1}, 0)
        assert event.to_dict() == {"event": "run.start", "a": 1}

    def test_sort_key_shape(self):
        event = TraceEvent("stage.start", STAGE1, {}, 4)
        assert event.sort_key() == (1, 0, 4)
