"""Schema-stability tests pinning the trace/metrics formats.

These tests are the compatibility contract: any change to the JSONL
layout, the canonical key sets, or the deterministic/timing split must
bump the corresponding format version *and* update the pins here.

CI reuses this module to validate real artifacts: when
``URHUNTER_TRACE_FILE`` / ``URHUNTER_METRICS_FILE`` point at files
produced by a ``--trace-out``/``--metrics-out`` run, those files are
validated instead of generating fresh ones in-process.
"""

import json
import os
from pathlib import Path

import pytest

from repro import cli
from repro.obs import METRICS_FORMAT_VERSION, TRACE_FORMAT_VERSION

#: pinned versions — bump deliberately, with a changelog entry
#: (v2: resilience layer — shed counters, hedge/aimd/budget events,
#: optional "resilience" deterministic metrics section;
#: metrics v3: optional "scan_path" timing block — cache hit/miss
#: tallies vary with the fast-lane knobs, so they are timing, never
#: deterministic;
#: trace v3: scan-plan hash in the header of plan-bound traces, the
#: "plan.built" deterministic event, and "shard.*" timing events;
#: metrics v4: optional "incremental" timing block — group-result-store
#: hit/miss counters depend on prior-run state, so timing, never
#: deterministic)
PINNED_TRACE_FORMAT = 3
PINNED_METRICS_FORMAT = 4

#: every run.end must account for queries with exactly these counters
RUN_END_REQUIRED = {
    "event",
    "seq",
    "status",
    "classified",
    "suspicious",
    "queries",
    "responses",
    "timeouts",
    "giveups",
    "skipped",
    "shed",
    "unaccounted",
}

REPORT_BLOCK_KEYS = {
    "classified",
    "categories",
    "suspicious",
    "queries_sent",
    "responses_seen",
    "timeouts",
    "txt_without_ip",
    "false_negative_rate",
}

SCAN_ENGINE_KEYS = {
    "queries",
    "responses",
    "timeouts",
    "retries",
    "giveups",
    "skipped",
    "shed",
    "loss_rate",
    "stages",
    "latency",
}

STAGE2_KEYS = {
    "records",
    "protective_matches",
    "distinct_keys",
    "cache_hits",
    "cache_misses",
    "memoized",
    "dedup_factor",
    "cache_hit_rate",
}


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """(trace path, metrics path): CI artifacts if provided, else a
    fresh small run."""
    trace_env = os.environ.get("URHUNTER_TRACE_FILE")
    metrics_env = os.environ.get("URHUNTER_METRICS_FILE")
    if trace_env and metrics_env:
        return Path(trace_env), Path(metrics_env)
    base = tmp_path_factory.mktemp("obs-artifacts")
    trace_path = base / "trace.jsonl"
    metrics_path = base / "metrics.json"
    code = cli.main(
        [
            "--scale",
            "small",
            "--seed",
            "9",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
            "-q",
            "run",
        ]
    )
    assert code == 0
    return trace_path, metrics_path


@pytest.fixture(scope="module")
def trace_lines(artifacts):
    return [
        json.loads(line)
        for line in artifacts[0].read_text().splitlines()
        if line.strip()
    ]


@pytest.fixture(scope="module")
def metrics_doc(artifacts):
    return json.loads(artifacts[1].read_text())


class TestVersionPins:
    def test_trace_format_is_pinned(self):
        assert TRACE_FORMAT_VERSION == PINNED_TRACE_FORMAT

    def test_metrics_format_is_pinned(self):
        assert METRICS_FORMAT_VERSION == PINNED_METRICS_FORMAT


class TestTraceSchema:
    def test_header_line(self, trace_lines):
        header = trace_lines[0]
        assert header["event"] == "trace.header"
        assert header["format"] == PINNED_TRACE_FORMAT
        # CLI runs bind the scan plan, stamping its content hash into
        # the header; nothing else may appear there
        assert set(header) <= {"event", "format", "plan"}
        if "plan" in header:
            assert len(header["plan"]) == 64
            int(header["plan"], 16)

    def test_every_line_has_an_event_name(self, trace_lines):
        assert all("event" in line for line in trace_lines)

    def test_deterministic_lines_never_carry_section(self, trace_lines):
        deterministic = [
            line
            for line in trace_lines[1:]
            if line.get("section") != "timing"
        ]
        assert deterministic, "trace has no deterministic events"
        assert all("section" not in line for line in deterministic)

    def test_deterministic_seq_is_dense(self, trace_lines):
        seqs = [
            line["seq"]
            for line in trace_lines[1:]
            if line.get("section") != "timing"
        ]
        assert seqs == list(range(len(seqs)))

    def test_run_boundaries(self, trace_lines):
        deterministic = [
            line
            for line in trace_lines[1:]
            if line.get("section") != "timing"
        ]
        assert deterministic[0]["event"] == "run.start"
        assert "fingerprint" in deterministic[0]
        assert deterministic[-1]["event"] == "run.end"

    def test_run_end_loss_accounting(self, trace_lines):
        (run_end,) = [
            line for line in trace_lines if line["event"] == "run.end"
        ]
        assert RUN_END_REQUIRED <= set(run_end)
        assert run_end["unaccounted"] == 0

    def test_stage_spans_are_balanced(self, trace_lines):
        opens = sum(
            1 for line in trace_lines if line["event"] == "stage.start"
        )
        closes = sum(
            1 for line in trace_lines if line["event"] == "stage.end"
        )
        assert opens == closes


class TestMetricsSchema:
    def test_top_level_layout(self, metrics_doc):
        assert set(metrics_doc) == {"format", "deterministic", "timing"}
        assert metrics_doc["format"] == PINNED_METRICS_FORMAT

    def test_report_block_keys(self, metrics_doc):
        report = metrics_doc["deterministic"]["report"]
        assert set(report) == REPORT_BLOCK_KEYS

    def test_scan_engine_keys(self, metrics_doc):
        scan = metrics_doc["deterministic"]["scan_engine"]
        assert set(scan) == SCAN_ENGINE_KEYS

    def test_stage2_keys(self, metrics_doc):
        stage2 = metrics_doc["deterministic"]["stage2_exclusion"]
        assert set(stage2) == STAGE2_KEYS

    def test_fingerprint_present(self, metrics_doc):
        assert "fingerprint" in metrics_doc["deterministic"]

    def test_wall_clock_confined_to_timing(self, metrics_doc):
        for token in ("wall_s", "records_per_s", "condition_s"):
            assert token not in json.dumps(metrics_doc["deterministic"])
        assert "wall_s" in json.dumps(metrics_doc["timing"])

    def test_timing_context_names_the_execution_knobs(self, metrics_doc):
        context = metrics_doc["timing"]["context"]
        assert {"execution", "stage2_workers", "channel_depth"} <= set(
            context
        )
