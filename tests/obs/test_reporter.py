"""Leveled stderr messaging (`repro.obs.reporter`)."""

import io
import sys

from repro.obs import Reporter, Verbosity


def lines(stream: io.StringIO):
    return stream.getvalue().splitlines()


class TestLevels:
    def test_normal_shows_info_hides_debug(self):
        stream = io.StringIO()
        reporter = Reporter(Verbosity.NORMAL, stream=stream)
        reporter.error("e")
        reporter.warn("w")
        reporter.info("i")
        reporter.debug("d")
        assert lines(stream) == ["e", "w", "i"]

    def test_quiet_keeps_errors_and_warnings(self):
        """Degraded-run banners and failures must survive -q: the exit
        code contract routes operator-critical state through them."""
        stream = io.StringIO()
        reporter = Reporter(Verbosity.QUIET, stream=stream)
        reporter.error("error: boom")
        reporter.warn("warning: degraded")
        reporter.info("# scenario: ...")
        reporter.debug("# detail")
        assert lines(stream) == ["error: boom", "warning: degraded"]

    def test_verbose_shows_everything(self):
        stream = io.StringIO()
        reporter = Reporter(Verbosity.VERBOSE, stream=stream)
        reporter.info("i")
        reporter.debug("d")
        assert lines(stream) == ["i", "d"]


class TestStreamBinding:
    def test_default_stream_is_resolved_at_call_time(self, capsys):
        """pytest swaps sys.stderr per test; a reporter constructed
        before the swap must still write to the *current* stderr."""
        reporter = Reporter()
        reporter.warn("late-bound")
        assert "late-bound" in capsys.readouterr().err

    def test_explicit_stream_wins(self, capsys):
        stream = io.StringIO()
        reporter = Reporter(stream=stream)
        reporter.error("directed")
        assert capsys.readouterr().err == ""
        assert lines(stream) == ["directed"]

    def test_nothing_ever_goes_to_stdout(self, capsys):
        reporter = Reporter(Verbosity.VERBOSE)
        reporter.error("a")
        reporter.warn("b")
        reporter.info("c")
        reporter.debug("d")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.splitlines() == ["a", "b", "c", "d"]


class TestVerbosityCoercion:
    def test_accepts_plain_ints(self):
        assert Reporter(2).verbosity is Verbosity.VERBOSE
        assert Reporter(0).verbosity is Verbosity.QUIET
