"""The CLI exit-code contract (satellite 6).

* 0 — clean, or degraded-but-complete (warning banner on stderr);
* 1 — validation failed;
* 2 — usage/configuration error;
* 3 — pipeline aborted.
"""

import pytest

from repro.cli import (
    EXIT_ABORTED,
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VALIDATION_FAILED,
    main,
)

SMALL = ["--scale", "small"]


class TestExitCodes:
    def test_contract_values(self):
        assert EXIT_OK == 0
        assert EXIT_VALIDATION_FAILED == 1
        assert EXIT_USAGE == 2
        assert EXIT_ABORTED == 3

    def test_clean_run_exits_zero_without_banner(self, capsys):
        assert main(SMALL + ["run"]) == EXIT_OK
        captured = capsys.readouterr()
        assert "warning: degraded" not in captured.err
        assert "unique URs classified" in captured.out

    def test_degraded_run_exits_zero_with_banner(self, capsys):
        code = main(
            SMALL
            + ["--intel-fault-rate", "0.9", "--fault-seed", "5", "run"]
        )
        assert code == EXIT_OK
        captured = capsys.readouterr()
        assert "warning: degraded" in captured.err
        assert "unique URs classified" in captured.out

    def test_validate_passes_on_clean_world(self, capsys):
        assert main(SMALL + ["validate"]) == EXIT_OK

    def test_resume_without_checkpoint_dir_is_usage_error(self, capsys):
        assert main(SMALL + ["--resume", "run"]) == EXIT_USAGE
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_bad_engine_config_is_usage_error(self, capsys):
        code = main(SMALL + ["--max-concurrency", "0", "run"])
        assert code == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_bad_fault_rate_is_usage_error(self, capsys):
        code = main(SMALL + ["--intel-fault-rate", "1.5", "run"])
        assert code == EXIT_USAGE
        assert "error_rate" in capsys.readouterr().err

    def test_bad_loss_rate_is_usage_error(self, capsys):
        assert main(SMALL + ["--loss-rate", "1.5", "run"]) == EXIT_USAGE

    def test_resume_from_empty_directory_aborts(self, tmp_path, capsys):
        code = main(
            SMALL
            + ["--checkpoint-dir", str(tmp_path), "--resume", "run"]
        )
        assert code == EXIT_ABORTED
        assert "no manifest" in capsys.readouterr().err

    def test_resume_fingerprint_mismatch_aborts(self, tmp_path, capsys):
        assert (
            main(SMALL + ["--checkpoint-dir", str(tmp_path), "run"])
            == EXIT_OK
        )
        code = main(
            SMALL
            + [
                "--seed",
                "99",
                "--checkpoint-dir",
                str(tmp_path),
                "--resume",
                "run",
            ]
        )
        assert code == EXIT_ABORTED
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_checkpointed_run_then_resume_both_exit_zero(
        self, tmp_path, capsys
    ):
        args = SMALL + ["--checkpoint-dir", str(tmp_path)]
        assert main(args + ["run"]) == EXIT_OK
        capsys.readouterr()
        assert main(args + ["--resume", "run"]) == EXIT_OK
        assert "resumed from checkpoint" in capsys.readouterr().err
