"""Tests for the checkpoint codecs and the CheckpointStore."""

import json

import pytest

from repro.core import HunterConfig
from repro.core.collector import ProtectiveFingerprint
from repro.core.correctness import CorrectRecordDatabase
from repro.core.records import (
    ClassifiedUR,
    IpVerdict,
    URCategory,
    UndelegatedRecord,
)
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine.metrics import ScanMetrics
from repro.intel.ipinfo import IpInfoDatabase
from repro.pipeline import CheckpointError, SourceHealth
from repro.pipeline.checkpoint import (
    CheckpointStore,
    config_fingerprint,
    decode_classified,
    decode_fingerprint,
    decode_health,
    decode_ip_verdict,
    decode_metrics,
    decode_profiles,
    decode_record,
    encode_classified,
    encode_fingerprint,
    encode_health,
    encode_ip_verdict,
    encode_metrics,
    encode_profiles,
    encode_record,
)


def sample_record(rdata="10.0.0.1"):
    return UndelegatedRecord(
        domain=name("victim.example"),
        nameserver_ip="192.0.2.1",
        provider="CloflareDNS",
        rrtype=RRType.A,
        rdata_text=rdata,
        nameserver_name=name("ns1.provider.example"),
        ttl=60,
    )


class TestCodecs:
    def test_record_round_trip(self):
        record = sample_record()
        assert decode_record(encode_record(record)) == record

    def test_record_without_nameserver_name(self):
        record = UndelegatedRecord(
            domain=name("victim.example"),
            nameserver_ip="192.0.2.1",
            provider="P",
            rrtype=RRType.TXT,
            rdata_text="v=spf1 -all",
        )
        assert decode_record(encode_record(record)) == record

    def test_classified_round_trip(self):
        entry = ClassifiedUR(
            record=sample_record(),
            category=URCategory.MALICIOUS,
            reasons=("survived-exclusion", "ip-intel"),
            corresponding_ips=("10.0.0.1",),
            txt_category=None,
        )
        decoded = decode_classified(encode_classified(entry))
        assert decoded == entry
        assert decoded.category is URCategory.MALICIOUS

    def test_ip_verdict_round_trip_sorts_tags(self):
        verdict = IpVerdict(
            address="10.0.0.1",
            intel_flagged=True,
            ids_flagged=False,
            vendor_count=2,
            tags=frozenset({"trojan", "cc", "botnet"}),
            alert_categories=("Malware C2",),
            intel_partial=True,
        )
        payload = encode_ip_verdict(verdict)
        assert payload["tags"] == ["botnet", "cc", "trojan"]
        assert decode_ip_verdict(payload) == verdict

    def test_protective_fingerprint_round_trip(self):
        fingerprint = ProtectiveFingerprint(
            nameserver_ip="192.0.2.1",
            records={(RRType.A, "127.0.0.1"), (RRType.TXT, "parked")},
        )
        decoded = decode_fingerprint(encode_fingerprint(fingerprint))
        assert decoded.nameserver_ip == fingerprint.nameserver_ip
        assert decoded.records == fingerprint.records

    def test_profiles_round_trip(self):
        ipinfo = IpInfoDatabase()
        ipinfo.register_prefix("10.0.0.0/8", 64500, "TestNet", "US")
        database = CorrectRecordDatabase(ipinfo)
        database.observe_a("victim.example", "10.0.0.1")
        database.observe_txt("victim.example", "v=spf1 -all")
        decoded = decode_profiles(encode_profiles(database), ipinfo)
        original = database.profile("victim.example")
        copy = decoded.profile("victim.example")
        assert copy.ips == original.ips
        assert copy.asns == original.asns
        assert copy.countries == original.countries
        assert copy.txt_values == original.txt_values

    def test_metrics_round_trip(self):
        metrics = ScanMetrics()
        counters = metrics.stage("ur")
        counters.queries = 10
        counters.responses = 8
        counters.timeouts = 2
        metrics.latency.record(0.02)
        metrics.latency.record(1.2)
        decoded = decode_metrics(encode_metrics(metrics))
        assert decoded.queries == 10
        assert decoded.latency.total == 2
        assert decoded.latency.percentile(50) == metrics.latency.percentile(
            50
        )
        assert decoded.summary() == metrics.summary()

    def test_metrics_none_round_trip(self):
        assert encode_metrics(None) is None
        assert decode_metrics(None) is None

    def test_health_round_trip(self):
        health = {
            "pdns": SourceHealth(
                name="pdns", calls=5, failures=2, state="open"
            )
        }
        decoded = decode_health(encode_health(health))
        assert decoded["pdns"] == health["pdns"]
        assert decoded["pdns"].dead


class TestConfigFingerprint:
    def test_stable_across_calls(self):
        config = HunterConfig()
        assert config_fingerprint(config) == config_fingerprint(
            HunterConfig()
        )

    def test_sensitive_to_config(self):
        assert config_fingerprint(HunterConfig()) != config_fingerprint(
            HunterConfig(retries=5)
        )

    def test_sensitive_to_extra(self):
        config = HunterConfig()
        assert config_fingerprint(
            config, extra={"scenario": "a"}
        ) != config_fingerprint(config, extra={"scenario": "b"})

    def test_handles_frozensets_and_enums(self):
        # enabled_conditions is a frozenset, min_severity an enum: both
        # must serialize deterministically
        one = config_fingerprint(HunterConfig())
        two = config_fingerprint(HunterConfig())
        assert one == two


class TestCheckpointStore:
    def test_fresh_prepare_clears_stale_files(self, tmp_path):
        stale = tmp_path / "stage1-collect.json"
        stale.write_text("{}")
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        assert not stale.exists()
        assert (tmp_path / "manifest.json").exists()

    def test_resume_without_manifest_fails(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="no manifest"):
            store.prepare("fp", resume=True)

    def test_resume_fingerprint_mismatch_fails(self, tmp_path):
        CheckpointStore(tmp_path).prepare("fp-one", resume=False)
        with pytest.raises(CheckpointError, match="fingerprint"):
            CheckpointStore(tmp_path).prepare("fp-two", resume=True)

    def test_resume_matching_fingerprint_keeps_stages(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        store.save("stage1-collect", {"x": 1})
        resumed = CheckpointStore(tmp_path)
        resumed.prepare("fp", resume=True)
        assert resumed.has("stage1-collect")
        assert resumed.load("stage1-collect") == {"x": 1}

    def test_load_missing_stage_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load("stage2-exclude")

    def test_invalidate_from_drops_downstream(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        store.save("stage1-collect", {})
        store.save("stage2-exclude", {})
        store.save("stage3-analyze", {})
        store.invalidate_from(["stage2-exclude", "stage3-analyze"])
        assert store.has("stage1-collect")
        assert not store.has("stage2-exclude")
        assert not store.has("stage3-analyze")

    def test_corrupt_checkpoint_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        (tmp_path / "stage1-collect.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load("stage1-collect")

    def test_failure_provenance(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        store.record_failure(
            "stage2-exclude", RuntimeError("pdns exploded")
        )
        failure = store.last_failure()
        assert failure["stage"] == "stage2-exclude"
        assert failure["error"] == "RuntimeError"
        assert "pdns exploded" in failure["message"]
        store.clear_failure()
        assert store.last_failure() is None

    def test_writes_are_atomic_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        store.save("stage1-collect", {"records": [1, 2, 3]})
        # no temp file left behind, and the file is valid JSON
        assert list(tmp_path.glob("*.tmp")) == []
        payload = json.loads(
            (tmp_path / "stage1-collect.json").read_text()
        )
        assert payload == {"records": [1, 2, 3]}


class TestPruneStale:
    """Checkpoint-directory GC: crashed runs leave segments/partials
    behind by design; prune_stale removes only the unusable subset."""

    PLAN = "a" * 64

    def _store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.prepare("fp", resume=False)
        return store

    def test_mismatched_partials_are_pruned(self, tmp_path):
        store = self._store(tmp_path)
        store.save_shard_partial(0, 2, self.PLAN, [])
        store.save_shard_partial(1, 4, self.PLAN, [])
        store.save_shard_partial(2, 2, "b" * 64, [])
        (tmp_path / "shard-part-00003.json").write_text("{torn")
        pruned = store.prune_stale(plan_hash=self.PLAN, shards=2)
        assert pruned == {"segments": 0, "partials": 3}
        assert [path.name for path in tmp_path.glob("shard-part-*")] == [
            "shard-part-00000.json"
        ]

    def test_matching_partials_survive(self, tmp_path):
        store = self._store(tmp_path)
        store.save_shard_partial(0, 2, self.PLAN, [])
        store.save_shard_partial(1, 2, self.PLAN, [])
        pruned = store.prune_stale(plan_hash=self.PLAN, shards=2)
        assert pruned == {"segments": 0, "partials": 0}
        assert store.load_shard_partials(self.PLAN, 2) != {}

    def test_superseding_stage_prunes_everything(self, tmp_path):
        store = self._store(tmp_path)
        store.save_segment(0, {"classified": []})
        store.save_segment(1, {"classified": []})
        store.save_shard_partial(0, 2, self.PLAN, [])
        store.save("stage1-collect", {"records": []})
        pruned = store.prune_stale(
            plan_hash=self.PLAN, shards=2, superseded_by="stage1-collect"
        )
        assert pruned == {"segments": 2, "partials": 1}
        assert list(tmp_path.glob("stream-seg-*")) == []
        assert list(tmp_path.glob("shard-part-*")) == []
        assert store.has("stage1-collect")

    def test_segments_survive_without_superseding_stage(self, tmp_path):
        store = self._store(tmp_path)
        store.save_segment(0, {"classified": []})
        pruned = store.prune_stale(
            plan_hash=self.PLAN, shards=2, superseded_by="stage1-collect"
        )
        assert pruned == {"segments": 0, "partials": 0}
        assert len(list(tmp_path.glob("stream-seg-*"))) == 1
