"""Resume semantics: checkpointed stages replay without re-scanning.

The acceptance bar (ISSUE, PR 2): a run killed after stage 1 and resumed
must produce a byte-identical report, with the resumed stages doing zero
live queries.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import URHunter
from repro.pipeline import (
    CheckpointStore,
    PipelineRunner,
    STAGE1,
    STAGE2,
    STAGE3,
    STAGE_ORDER,
)

from .conftest import make_world

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI = [sys.executable, "-m", "repro", "--scale", "small"]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("URHUNTER_CRASH_STAGE", None)
    return env


class TestInProcessResume:
    def test_stage_order_constants(self):
        assert STAGE_ORDER == (STAGE1, STAGE2, STAGE3)

    def test_runner_without_store_matches_plain_run(self, baseline_report):
        hunter = URHunter.from_world(make_world())
        result = PipelineRunner(hunter).run()
        assert result.executed == STAGE_ORDER
        assert result.resumed == ()
        assert result.report.summary() == baseline_report.summary()

    def test_resume_requires_store(self):
        hunter = URHunter.from_world(make_world())
        with pytest.raises(ValueError, match="checkpoint store"):
            PipelineRunner(hunter, resume=True)

    def test_unknown_stop_after_rejected(self):
        hunter = URHunter.from_world(make_world())
        with pytest.raises(ValueError, match="unknown stage"):
            PipelineRunner(hunter).run(stop_after="stage9-profit")

    def test_stop_resume_is_byte_identical_with_zero_queries(
        self, tmp_path, baseline_report
    ):
        first = URHunter.from_world(make_world())
        halted = PipelineRunner(
            first, store=CheckpointStore(tmp_path)
        ).run(stop_after=STAGE1)
        assert halted.report is None
        assert halted.executed == (STAGE1,)

        second = URHunter.from_world(make_world())
        resumed = PipelineRunner(
            second, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert resumed.resumed == (STAGE1,)
        assert resumed.executed == (STAGE2, STAGE3)
        # the resumed stage did not re-send a single query
        assert second.engine.metrics.queries == 0
        assert resumed.report.summary() == baseline_report.summary()

    def test_full_resume_replays_all_stages(
        self, tmp_path, baseline_report
    ):
        store = CheckpointStore(tmp_path)
        PipelineRunner(
            URHunter.from_world(make_world()), store=store
        ).run()
        replayer = URHunter.from_world(make_world())
        replay = PipelineRunner(
            replayer, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert replay.resumed == STAGE_ORDER
        assert replay.executed == ()
        assert replayer.engine.metrics.queries == 0
        assert replay.report.summary() == baseline_report.summary()

    def test_unvalidated_checkpoint_cannot_satisfy_validating_resume(
        self, tmp_path
    ):
        PipelineRunner(
            URHunter.from_world(make_world()),
            store=CheckpointStore(tmp_path),
        ).run(validate=False)
        resume = PipelineRunner(
            URHunter.from_world(make_world()),
            store=CheckpointStore(tmp_path),
            resume=True,
        ).run(validate=True)
        # stage 2 re-ran to compute the FN rate the checkpoint lacked
        assert STAGE2 in resume.executed
        assert resume.report.false_negative_rate is not None

    def test_scan_metrics_survive_resume(self, tmp_path, baseline_report):
        store = CheckpointStore(tmp_path)
        PipelineRunner(
            URHunter.from_world(make_world()), store=store
        ).run(stop_after=STAGE1)
        resumed = PipelineRunner(
            URHunter.from_world(make_world()),
            store=CheckpointStore(tmp_path),
            resume=True,
        ).run()
        live = baseline_report.scan_metrics
        replay = resumed.report.scan_metrics
        assert replay.queries == live.queries
        assert replay.timeouts == live.timeouts
        assert replay.summary() == live.summary()


class TestKillAndResumeSubprocess:
    """The CI smoke test, in miniature: SIGTERM mid-stage-2, resume,
    compare stdout byte-for-byte against an uninterrupted run."""

    def test_sigterm_then_resume_byte_identical(self, tmp_path):
        baseline = subprocess.run(
            CLI + ["--checkpoint-dir", str(tmp_path / "base"), "run"],
            capture_output=True,
            env=cli_env(),
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert baseline.returncode == 0, baseline.stderr.decode()

        crash_env = cli_env()
        crash_env["URHUNTER_CRASH_STAGE"] = STAGE2
        crashed = subprocess.run(
            CLI + ["--checkpoint-dir", str(tmp_path / "ckpt"), "run"],
            capture_output=True,
            env=crash_env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        # killed by SIGTERM: raw -15 or shell-style 143
        assert crashed.returncode in (-signal.SIGTERM, 143)
        assert (tmp_path / "ckpt" / f"{STAGE1}.json").exists()
        assert not (tmp_path / "ckpt" / f"{STAGE2}.json").exists()

        resumed = subprocess.run(
            CLI
            + [
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--resume",
                "run",
            ],
            capture_output=True,
            env=cli_env(),
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == baseline.stdout
        assert b"resumed from checkpoint" in resumed.stderr


class TestPrunedEvent:
    """Resumes garbage-collect unusable segment/partial files and
    announce it with a ``checkpoint.pruned`` timing event."""

    def test_resume_prunes_stale_partials_and_emits(self, tmp_path):
        from repro.obs import RunTrace

        store = CheckpointStore(tmp_path)
        PipelineRunner(
            URHunter.from_world(make_world()), store=store
        ).run()
        # a crashed earlier run under a different plan left this behind
        store.save_shard_partial(0, 2, "0" * 64, [])
        hunter = URHunter.from_world(make_world())
        trace = RunTrace()
        hunter.attach_trace(trace)
        PipelineRunner(
            hunter, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert list(tmp_path.glob("shard-part-*")) == []
        (pruned,) = [
            event
            for event in trace.timing_events()
            if event["event"] == "checkpoint.pruned"
        ]
        assert pruned["partials"] >= 1

    def test_clean_resume_emits_nothing(self, tmp_path):
        from repro.obs import RunTrace

        store = CheckpointStore(tmp_path)
        PipelineRunner(
            URHunter.from_world(make_world()), store=store
        ).run(stop_after=STAGE1)
        hunter = URHunter.from_world(make_world())
        trace = RunTrace()
        hunter.attach_trace(trace)
        PipelineRunner(
            hunter, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert [
            event
            for event in trace.timing_events()
            if event["event"] == "checkpoint.pruned"
        ] == []
