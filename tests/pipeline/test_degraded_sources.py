"""Degraded-source behaviour at the component level (satellite 3).

Covers ``recover_pdns_subdomains`` and ``UniformityChecker`` under empty
and failing passive-DNS / IP-metadata backends.
"""

import pytest

from repro.core import HunterConfig, URHunter
from repro.core.collector import DomainTarget
from repro.core.correctness import (
    COND_AS,
    COND_CERT,
    COND_GEO,
    COND_HTTP,
    COND_IP,
    COND_PDNS,
    CorrectRecordDatabase,
    UniformityChecker,
)
from repro.core.hunter import recover_pdns_subdomains
from repro.core.records import UndelegatedRecord
from repro.core.suspicion import SuspicionFilter
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.ipinfo import IpInfoDatabase
from repro.intel.pdns import PassiveDnsStore
from repro.pipeline import FaultPlan, FlakyIPInfo, FlakyPassiveDNS

from .conftest import make_world


def make_ipinfo():
    info = IpInfoDatabase()
    info.register_prefix("10.0.0.0/16", 64500, "HomeNet", "US")
    info.register_prefix("172.16.0.0/12", 64999, "ElseNet", "RU")
    return info


def make_database(ipinfo):
    database = CorrectRecordDatabase(ipinfo)
    database.observe_a("victim.example", "10.0.0.1")
    database.observe_txt("victim.example", "v=spf1 -all")
    return database


def a_record(rdata="172.16.0.9"):
    return UndelegatedRecord(
        domain=name("victim.example"),
        nameserver_ip="192.0.2.1",
        provider="P",
        rrtype=RRType.A,
        rdata_text=rdata,
    )


def txt_record(rdata="v=rogue token"):
    return UndelegatedRecord(
        domain=name("victim.example"),
        nameserver_ip="192.0.2.1",
        provider="P",
        rrtype=RRType.TXT,
        rdata_text=rdata,
    )


class TestRecoverPdnsSubdomains:
    TARGETS = [DomainTarget(domain=name("victim.example"), rank=3)]

    def test_empty_store_recovers_nothing(self):
        assert (
            recover_pdns_subdomains(PassiveDnsStore(), self.TARGETS, 1000.0)
            == []
        )

    def test_recovers_observed_subdomain_with_parent_rank(self):
        pdns = PassiveDnsStore()
        pdns.observe("mail.victim.example", RRType.A, "10.0.0.2", 100.0)
        pdns.observe("other.example", RRType.A, "10.0.0.3", 100.0)
        recovered = recover_pdns_subdomains(pdns, self.TARGETS, 1000.0)
        assert [target.domain for target in recovered] == [
            name("mail.victim.example")
        ]
        assert recovered[0].rank == 3

    def test_dead_store_raises_source_error(self):
        from repro.pipeline import SourceError

        pdns = FlakyPassiveDNS(PassiveDnsStore(), FaultPlan(dead=True))
        with pytest.raises(SourceError):
            recover_pdns_subdomains(pdns, self.TARGETS, 1000.0)


class TestCheckerDegradedPdns:
    def test_dead_pdns_degrades_a_record(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo),
            pdns=FlakyPassiveDNS(PassiveDnsStore(), FaultPlan(dead=True)),
        )
        verdict = checker.check(a_record(), now=1000.0)
        assert not verdict.is_correct
        assert COND_PDNS in verdict.degraded_conditions
        assert checker.skipped_conditions[COND_PDNS] == 1
        assert checker.source_health()["pdns"].degraded

    def test_dead_pdns_degrades_txt_record(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo),
            pdns=FlakyPassiveDNS(PassiveDnsStore(), FaultPlan(dead=True)),
        )
        verdict = checker.check(txt_record(), now=1000.0)
        assert not verdict.is_correct
        assert verdict.degraded_conditions == (COND_PDNS,)

    def test_empty_but_healthy_pdns_is_not_degraded(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo), pdns=PassiveDnsStore()
        )
        verdict = checker.check(a_record(), now=1000.0)
        assert not verdict.is_correct
        assert verdict.degraded_conditions == ()
        assert checker.skipped_conditions == {}

    def test_no_pdns_configured_is_not_degraded(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(make_database(ipinfo), pdns=None)
        verdict = checker.check(txt_record(), now=1000.0)
        assert not verdict.is_correct
        assert verdict.degraded_conditions == ()

    def test_transient_pdns_outage_absorbed_by_retries(self):
        ipinfo = make_ipinfo()
        pdns = PassiveDnsStore()
        pdns.observe(
            "victim.example", RRType.A, "172.16.0.9", 500.0
        )
        checker = UniformityChecker(
            make_database(ipinfo),
            pdns=FlakyPassiveDNS(pdns, FaultPlan(fail_first=2)),
        )
        verdict = checker.check(a_record(), now=1000.0)
        # two failures, then the retry budget lands the real answer
        assert verdict.is_correct
        assert verdict.matched_condition == COND_PDNS
        assert checker.source_health()["pdns"].retries == 2


class TestCheckerDegradedIpinfo:
    def test_dead_ipinfo_skips_all_meta_conditions(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo),
            ipinfo=FlakyIPInfo(ipinfo, FaultPlan(dead=True)),
        )
        verdict = checker.check(a_record(), now=1000.0)
        assert not verdict.is_correct
        assert set(verdict.degraded_conditions) == {
            COND_AS,
            COND_GEO,
            COND_CERT,
            COND_HTTP,
        }
        for condition in verdict.degraded_conditions:
            assert checker.skipped_conditions[condition] == 1

    def test_ip_subset_still_fires_without_ipinfo(self):
        # COND_IP needs no metadata: a dead ipinfo must not break it
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo),
            ipinfo=FlakyIPInfo(ipinfo, FaultPlan(dead=True)),
        )
        verdict = checker.check(a_record(rdata="10.0.0.1"), now=1000.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_IP

    def test_healthy_ipinfo_matches_as_subset(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(make_database(ipinfo))
        verdict = checker.check(a_record(rdata="10.0.0.77"), now=1000.0)
        assert verdict.is_correct
        assert verdict.matched_condition == COND_AS


class TestSuspicionDegradation:
    def test_degraded_verdict_tags_unverifiable_reason(self):
        ipinfo = make_ipinfo()
        checker = UniformityChecker(
            make_database(ipinfo),
            pdns=FlakyPassiveDNS(PassiveDnsStore(), FaultPlan(dead=True)),
            ipinfo=FlakyIPInfo(ipinfo, FaultPlan(dead=True)),
        )
        outcome = SuspicionFilter(checker, {}).classify(
            [a_record()], now=1000.0
        )
        (entry,) = outcome.classified
        assert entry.is_suspicious
        tagged = [
            reason
            for reason in entry.reasons
            if reason.startswith("unverifiable:")
        ]
        assert len(tagged) == 1
        for condition in (COND_AS, COND_PDNS):
            assert condition in tagged[0]
        assert outcome.unverifiable == [entry]


class TestPipelineDegradedPdnsExpansion:
    def test_dead_pdns_skips_expansion_with_note(self):
        world = make_world()
        hunter = URHunter.from_world(
            world, HunterConfig(expand_pdns_subdomains=True)
        )
        hunter.pdns = FlakyPassiveDNS(world.pdns, FaultPlan(dead=True))
        report = hunter.run()
        assert report.is_degraded
        assert "pdns-expansion-skipped:pdns" in report.degraded.notes
        # the run still measured the configured targets
        assert report.classified

    def test_healthy_pdns_expansion_has_no_note(self):
        world = make_world()
        hunter = URHunter.from_world(
            world, HunterConfig(expand_pdns_subdomains=True)
        )
        report = hunter.run()
        assert report.degraded is None or not report.degraded.notes
