"""Chaos harness: fault-injected runs vs the fault-free baseline.

The tentpole guarantee (ISSUE, PR 2): wherever the surviving quorum
covers a verdict, a degraded run classifies it *identically* to a
fault-free run — degradation shrinks the evidence base and is flagged,
it never silently flips verdicts.
"""

import pytest

from repro.core import URHunter
from repro.core.records import URCategory
from repro.intel.aggregator import ThreatIntelAggregator
from repro.pipeline import (
    FaultPlan,
    FlakyIPInfo,
    FlakyPassiveDNS,
    FlakyVendor,
)

from .conftest import CHAOS_SEEDS, make_world


def unverifiable(entry) -> bool:
    return any(
        reason.startswith("unverifiable") for reason in entry.reasons
    )


def by_key(report):
    return {entry.record.key: entry for entry in report.classified}


def chaos_hunter(world, seed: int, error_rate: float) -> URHunter:
    """A hunter whose stage-2/3 data sources all fail at ``error_rate``."""
    hunter = URHunter.from_world(world)
    vendors = [
        FlakyVendor(
            vendor,
            FaultPlan(seed=seed + index, error_rate=error_rate),
        )
        for index, vendor in enumerate(world.vendors)
    ]
    hunter.intel = ThreatIntelAggregator(vendors)
    hunter.pdns = FlakyPassiveDNS(
        world.pdns, FaultPlan(seed=seed + 101, error_rate=error_rate)
    )
    hunter.stage2_ipinfo = FlakyIPInfo(
        world.ipinfo, FaultPlan(seed=seed + 202, error_rate=error_rate)
    )
    return hunter


class TestDeadVendorQuorum:
    """One of three vendors circuit-broken: the run completes, flags the
    degradation, and classifies per the surviving quorum."""

    @pytest.fixture(scope="class")
    def dead_vendor_run(self):
        world = make_world()
        dead_name = world.vendors[0].name
        hunter = URHunter.from_world(world)
        vendors = [FlakyVendor(world.vendors[0], FaultPlan(dead=True))]
        vendors.extend(world.vendors[1:])
        hunter.intel = ThreatIntelAggregator(vendors)
        return world, dead_name, hunter.run()

    def test_run_completes_and_flags_degradation(self, dead_vendor_run):
        _, dead_name, report = dead_vendor_run
        assert report.is_degraded
        source = f"vendor:{dead_name}"
        assert source in report.degraded.degraded_source_names
        assert source in report.degraded.dead_sources

    def test_surviving_quorum_classifies_identically(
        self, dead_vendor_run
    ):
        world, dead_name, report = dead_vendor_run
        assert report.ip_verdicts
        for address, verdict in report.ip_verdicts.items():
            # ground truth straight from the unwrapped vendor fleet
            flaggers = {
                vendor.name
                for vendor in world.vendors
                if vendor.is_malicious(address)
            }
            surviving = flaggers - {dead_name}
            assert verdict.intel_flagged == bool(surviving)
            assert verdict.vendor_count == len(surviving)
            assert verdict.intel_partial

    def test_surviving_evidence_keeps_malicious_verdicts(
        self, dead_vendor_run, baseline_report
    ):
        _, _, report = dead_vendor_run
        chaos = by_key(report)
        for key, entry in by_key(baseline_report).items():
            if entry.category is not URCategory.MALICIOUS:
                continue
            counterpart = chaos[key]
            still_malicious = any(
                report.ip_verdicts[address].is_malicious
                for address in counterpart.corresponding_ips
            )
            if still_malicious:
                assert counterpart.category is URCategory.MALICIOUS

    def test_partial_verdicts_counted(self, dead_vendor_run):
        _, _, report = dead_vendor_run
        assert report.degraded.partial_ip_verdicts == len(
            report.ip_verdicts
        )


class TestSeededChaos:
    """Randomized (seeded) background flakiness across every source."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_classification_equivalence_where_quorum_survives(
        self, seed, baseline_report
    ):
        world = make_world()
        report = chaos_hunter(world, seed, error_rate=0.15).run()
        baseline = by_key(baseline_report)
        chaos = by_key(report)
        # same stage-1 collection: faults only hit stages 2 and 3
        assert set(chaos) == set(baseline)
        downgraded = 0
        for key, entry in chaos.items():
            if unverifiable(entry):
                downgraded += 1
                continue
            assert entry.category is baseline[key].category, (
                f"fault-free quorum verdict flipped for {key} "
                f"(seed {seed})"
            )
        if downgraded:
            assert report.is_degraded
            assert report.degraded.unverifiable_urs == downgraded
            assert len(report.unverifiable) == downgraded

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:1])
    def test_chaos_with_network_loss_still_completes(
        self, seed, baseline_report
    ):
        world = make_world()
        world.network.inject_faults(loss_rate=0.05, seed=seed)
        report = chaos_hunter(world, seed, error_rate=0.15).run()
        assert report.summary()
        baseline = by_key(baseline_report)
        chaos = by_key(report)
        # stage-1 loss may shrink the collection, never grow it
        assert set(chaos) <= set(baseline)
        for key, entry in chaos.items():
            if unverifiable(entry):
                continue
            assert entry.category is baseline[key].category

    @pytest.mark.parametrize("seed", CHAOS_SEEDS[:1])
    def test_chaos_run_reports_source_health(self, seed):
        world = make_world()
        hunter = chaos_hunter(world, seed, error_rate=0.4)
        report = hunter.run()
        assert report.is_degraded
        ledgers = report.degraded.sources
        # every faulted source family shows up in the accounting
        assert "pdns" in ledgers or "ipinfo" in ledgers or any(
            name.startswith("vendor:") for name in ledgers
        )
        for ledger in ledgers.values():
            assert ledger.calls >= ledger.successes + ledger.failures
