"""Tests for the fault injectors and the SourceGuard."""

import pytest

from repro.intel.ipinfo import IpInfoDatabase
from repro.intel.pdns import PassiveDnsStore
from repro.intel.vendor import SecurityVendor
from repro.pipeline import (
    FaultPlan,
    FlakyIPInfo,
    FlakyPassiveDNS,
    FlakyVendor,
    SourceError,
    SourceGuard,
    SourceRateLimited,
    SourceTimeout,
)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(ratelimit_share=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(fail_first=-1)

    def test_dead_plan_always_faults(self):
        plan = FaultPlan(dead=True)
        for _ in range(5):
            with pytest.raises(SourceError):
                plan.check("src")
        assert plan.calls == 5
        assert plan.faults == 5

    def test_fail_first_then_succeeds(self):
        plan = FaultPlan(fail_first=2)
        for _ in range(2):
            with pytest.raises(SourceError):
                plan.check("src")
        plan.check("src")  # third call succeeds
        assert plan.faults == 2

    def test_seeded_schedule_is_deterministic(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed, error_rate=0.5)
            out = []
            for _ in range(50):
                try:
                    plan.check("src")
                    out.append("ok")
                except SourceRateLimited:
                    out.append("429")
                except SourceTimeout:
                    out.append("timeout")
            return out

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)

    def test_ratelimit_share_extremes(self):
        all_429 = FaultPlan(dead=True, ratelimit_share=1.0)
        with pytest.raises(SourceRateLimited):
            all_429.check("src")
        all_timeout = FaultPlan(dead=True, ratelimit_share=0.0)
        with pytest.raises(SourceTimeout):
            all_timeout.check("src")


class TestFlakyWrappers:
    def test_vendor_writes_pass_through(self):
        vendor = SecurityVendor("VT")
        flaky = FlakyVendor(vendor, FaultPlan(dead=True))
        flaky.flag("6.6.6.6")  # setup path: must not fault
        assert vendor.is_malicious("6.6.6.6")
        with pytest.raises(SourceError):
            flaky.is_malicious("6.6.6.6")
        flaky.clear("6.6.6.6")
        assert not vendor.is_malicious("6.6.6.6")

    def test_vendor_proxies_identity(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6")
        flaky = FlakyVendor(vendor, FaultPlan())
        assert flaky.name == "VT"
        assert flaky.version == vendor.version
        assert len(flaky) == 1
        assert flaky.is_malicious("6.6.6.6")

    def test_pdns_reads_fault_writes_pass(self):
        store = PassiveDnsStore()
        flaky = FlakyPassiveDNS(store, FaultPlan(dead=True))
        flaky.observe("example.com", 1, "10.0.0.1", 100.0)
        assert len(store) == 1
        with pytest.raises(SourceError):
            flaky.record_in_history("example.com", 1, "10.0.0.1", 200.0)
        with pytest.raises(SourceError):
            flaky.domains()

    def test_ipinfo_lookup_faults(self):
        info = IpInfoDatabase()
        info.register_prefix("10.0.0.0/8", 64500, "TestNet", "US")
        flaky = FlakyIPInfo(info, FaultPlan(dead=True))
        with pytest.raises(SourceError):
            flaky.lookup("10.0.0.1")
        clean = FlakyIPInfo(info, FaultPlan())
        assert clean.asn("10.0.0.1") == 64500


class TestSourceGuard:
    def test_retries_ride_out_transient_outage(self):
        plan = FaultPlan(fail_first=2)
        guard = SourceGuard(retries=2)
        ok, value = guard.try_call(
            "src", lambda: (plan.check("src"), "data")[1]
        )
        assert ok and value == "data"
        health = guard.snapshot()["src"]
        assert health.retries == 2
        assert health.failures == 0
        assert not health.degraded

    def test_dead_source_opens_circuit_then_skips(self):
        plan = FaultPlan(dead=True)
        guard = SourceGuard(retries=0, failure_threshold=3)

        def call():
            plan.check("src")

        for _ in range(3):
            assert guard.try_call("src", call) == (False, None)
        # circuit is now open: the call is skipped, not attempted
        attempts_before = plan.calls
        assert guard.try_call("src", call) == (False, None)
        assert plan.calls == attempts_before
        health = guard.snapshot()["src"]
        assert health.dead
        assert health.skipped == 1

    def test_ratelimit_triggers_cooldown_skip(self):
        guard = SourceGuard(retries=0, ratelimit_cooldown=8.0)

        def always_429():
            raise SourceRateLimited("src")

        assert guard.try_call("src", always_429) == (False, None)
        # within the cool-down window the next call is skipped unsent
        assert guard.try_call("src", lambda: "data") == (False, None)
        health = guard.snapshot()["src"]
        assert health.rate_limited == 1
        assert health.skipped == 1

    def test_non_source_errors_propagate(self):
        guard = SourceGuard()

        def boom():
            raise RuntimeError("bug, not flakiness")

        with pytest.raises(RuntimeError):
            guard.try_call("src", boom)

    def test_backoff_accounting(self):
        plan = FaultPlan(fail_first=2)
        guard = SourceGuard(
            retries=2, backoff_base=0.5, backoff_factor=2.0
        )
        guard.try_call("src", lambda: plan.check("src"))
        assert guard.snapshot()["src"].backoff_wait == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceGuard(retries=-1)
        with pytest.raises(ValueError):
            SourceGuard(backoff_factor=0.5)
