"""No wall-clock leakage into deterministic byte surfaces.

Two surfaces are byte-compared across runs (CI resume transcripts, the
batch↔stream equivalence suite): ``MeasurementReport.summary()`` and
the JSON checkpoints.  Wall-clock readings vary run to run, so any
timing figure on either surface would break the comparisons — timing
belongs exclusively to :meth:`Stage2Metrics.timing_summary`, which goes
to stderr diagnostics only.
"""

import json

import pytest

from repro.core import URHunter
from repro.pipeline import CheckpointStore, PipelineRunner, STAGE_ORDER
from repro.pipeline.checkpoint import (
    encode_segment,
    encode_stage2,
    encode_stage2_metrics,
)

from .conftest import make_world

FORBIDDEN = ("wall_s", "condition_s", "records/s", "wall=")


class TestNoTimingLeakage:
    @pytest.fixture(scope="class")
    def checkpointed_run(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("timing")
        hunter = URHunter.from_world(make_world())
        result = PipelineRunner(
            hunter, store=CheckpointStore(directory)
        ).run()
        return directory, result.report

    def test_report_summary_has_no_wall_clock(self, checkpointed_run):
        _, report = checkpointed_run
        text = report.summary().lower()
        assert "wall" not in text
        for token in FORBIDDEN:
            assert token not in text

    def test_metrics_split_timing_from_counters(self, checkpointed_run):
        _, report = checkpointed_run
        metrics = report.stage2_metrics
        assert "wall" not in metrics.summary()
        # the diagnostic view is where timing lives — by design
        assert "wall" in metrics.timing_summary()

    def test_stage_checkpoints_have_no_wall_clock(self, checkpointed_run):
        directory, _ = checkpointed_run
        for stage in STAGE_ORDER:
            blob = (directory / f"{stage}.json").read_text()
            for token in ("wall_s", "condition_s"):
                assert token not in blob, f"{stage} leaks {token}"

    def test_encode_stage2_metrics_drops_timing_fields(
        self, checkpointed_run
    ):
        _, report = checkpointed_run
        payload = encode_stage2_metrics(report.stage2_metrics)
        assert payload is not None
        assert not {"wall_s", "condition_s"} & payload.keys()

    def test_segment_payload_has_no_wall_clock(self, checkpointed_run):
        _, report = checkpointed_run
        payload = encode_segment(0, list(report.classified[:5]))
        assert set(payload) == {"index", "classified"}
        blob = json.dumps(payload)
        assert "wall_s" not in blob and "condition_s" not in blob

    def test_full_stage2_payload_round_trips_without_timing(
        self, checkpointed_run
    ):
        _, report = checkpointed_run
        hunter = URHunter.from_world(make_world())
        stage1 = hunter.stage1_collect()
        stage2 = hunter.stage2_exclude(stage1, validate=True)
        blob = json.dumps(encode_stage2(stage2, validated=True))
        assert "wall_s" not in blob and "condition_s" not in blob
