"""No wall-clock leakage into deterministic byte surfaces.

Two surfaces are byte-compared across runs (CI resume transcripts, the
batch↔stream equivalence suite): ``MeasurementReport.summary()`` and
the JSON checkpoints.  Wall-clock readings vary run to run, so any
timing figure on either surface would break the comparisons — timing
belongs exclusively to :meth:`Stage2Metrics.timing_summary`, which goes
to stderr diagnostics only.
"""

import json

import pytest

from repro.core import URHunter
from repro.obs import RunTrace, build_metrics_document
from repro.pipeline import CheckpointStore, PipelineRunner, STAGE_ORDER
from repro.pipeline.checkpoint import (
    encode_segment,
    encode_stage2,
    encode_stage2_metrics,
)

from .conftest import make_world

FORBIDDEN = ("wall_s", "condition_s", "records/s", "wall=")


class TestNoTimingLeakage:
    @pytest.fixture(scope="class")
    def checkpointed_run(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("timing")
        hunter = URHunter.from_world(make_world())
        result = PipelineRunner(
            hunter, store=CheckpointStore(directory)
        ).run()
        return directory, result.report

    def test_report_summary_has_no_wall_clock(self, checkpointed_run):
        _, report = checkpointed_run
        text = report.summary().lower()
        assert "wall" not in text
        for token in FORBIDDEN:
            assert token not in text

    def test_metrics_split_timing_from_counters(self, checkpointed_run):
        _, report = checkpointed_run
        metrics = report.stage2_metrics
        assert "wall" not in metrics.summary()
        # the diagnostic view is where timing lives — by design
        assert "wall" in metrics.timing_summary()

    def test_stage_checkpoints_have_no_wall_clock(self, checkpointed_run):
        directory, _ = checkpointed_run
        for stage in STAGE_ORDER:
            blob = (directory / f"{stage}.json").read_text()
            for token in ("wall_s", "condition_s"):
                assert token not in blob, f"{stage} leaks {token}"

    def test_encode_stage2_metrics_drops_timing_fields(
        self, checkpointed_run
    ):
        _, report = checkpointed_run
        payload = encode_stage2_metrics(report.stage2_metrics)
        assert payload is not None
        assert not {"wall_s", "condition_s"} & payload.keys()

    def test_segment_payload_has_no_wall_clock(self, checkpointed_run):
        _, report = checkpointed_run
        payload = encode_segment(0, list(report.classified[:5]))
        assert set(payload) == {"index", "classified"}
        blob = json.dumps(payload)
        assert "wall_s" not in blob and "condition_s" not in blob

    def test_full_stage2_payload_round_trips_without_timing(
        self, checkpointed_run
    ):
        _, report = checkpointed_run
        hunter = URHunter.from_world(make_world())
        stage1 = hunter.stage1_collect()
        stage2 = hunter.stage2_exclude(stage1, validate=True)
        blob = json.dumps(encode_stage2(stage2, validated=True))
        assert "wall_s" not in blob and "condition_s" not in blob


class TestTraceAndMetricsDocLeakage:
    """The observability layer adds two more byte-compared surfaces:
    the trace's deterministic section and the metrics document's
    ``deterministic`` block.  Wall clock belongs exclusively to the
    trace's timing section and the document's ``timing`` block."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        hunter = URHunter.from_world(make_world())
        trace = RunTrace()
        hunter.attach_trace(trace)
        report = hunter.run()
        return trace, report

    def test_deterministic_trace_has_no_wall_clock(self, traced_run):
        trace, _ = traced_run
        blob = "\n".join(trace.deterministic_lines())
        for token in FORBIDDEN:
            assert token not in blob, f"trace leaks {token}"

    def test_metrics_document_confines_timing(self, traced_run):
        _, report = traced_run
        document = build_metrics_document(
            report, execution="batch", stage2_workers=1, channel_depth=64
        )
        deterministic = json.dumps(document["deterministic"])
        for token in FORBIDDEN:
            assert token not in deterministic, f"metrics leak {token}"
        # the timing block is where the wall clock *must* appear
        assert "wall_s" in json.dumps(document["timing"])

    def test_flow_occupancy_is_a_timing_event(self):
        """Channel occupancy depends on channel depth, so the streaming
        flow must report it through emit_timing, never emit."""
        from repro.core import HunterConfig

        hunter = URHunter.from_world(
            make_world(), HunterConfig(execution="stream", channel_depth=4)
        )
        trace = RunTrace()
        hunter.attach_trace(trace)
        hunter.run()
        deterministic = "\n".join(trace.deterministic_lines())
        assert "flow.channels" not in deterministic
        timing_names = [
            event["event"] for event in trace.timing_events()
        ]
        assert "flow.channels" in timing_names
