"""Fixtures for the pipeline/chaos suite.

``CHAOS_SEEDS`` can be overridden from the environment (the CI chaos job
runs a different fixed set than the default developer seeds)::

    CHAOS_SEEDS="101 202 303" pytest tests/pipeline/test_chaos.py
"""

import os

import pytest

from repro.core import URHunter
from repro.scenario import build_world, small_config

#: seeds the chaos tests parametrize over
CHAOS_SEEDS = [
    int(seed)
    for seed in os.environ.get("CHAOS_SEEDS", "11 23 37").split()
]


def make_world(seed: int = 7):
    """A fresh small world (never shared: chaos tests mutate them)."""
    return build_world(small_config(seed=seed))


@pytest.fixture
def fresh_world():
    return make_world()


@pytest.fixture(scope="module")
def baseline_report():
    """A fault-free measurement to compare degraded runs against."""
    return URHunter.from_world(make_world()).run()
