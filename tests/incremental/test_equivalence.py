"""Incremental equivalence: warm runs are byte-identical to cold runs.

The acceptance invariant of the incremental layer: a warm run that
replays stored group outcomes produces the same report summary, trace
deterministic section, and metrics deterministic section as a cold
full scan — across batch/stream execution, shard counts, and the
process pool — both on an unchanged world and after zone mutations
dirty a subset of groups.  Chaos/faulted runs and ``--no-incremental``
must bypass the store entirely and stay byte-identical to the
store-less behavior.
"""

import json

import pytest

from repro.core import HunterConfig, URHunter
from repro.core.longitudinal import LongitudinalStudy
from repro.dns.rdata import RRType
from repro.incremental import GroupResultStore, server_fingerprint
from repro.obs import RunTrace
from repro.obs.metrics import build_metrics_document
from repro.plan.pool import WorldSpec
from repro.resilience.scenario import apply_scenario, load_scenario
from repro.scenario import build_world, small_config

SEED = 7
LOSS = 0.15
CHAOS = "tail-latency-storm"


def mutate_zones(world, count=3):
    """Deterministically drop one apex rrset from ``count`` cacheable
    servers' zones — the longitudinal churn (record takedowns, moved
    domains) a warm run must notice and re-execute."""
    mutated = 0
    for address in sorted(world.network.dns_hosts()):
        if mutated >= count:
            break
        if server_fingerprint(world.network, address) is None:
            continue
        service = world.network.dns_hosts()[address]
        for zone in service.zones:
            if zone.remove(zone.origin, RRType.A) or zone.remove(
                zone.origin, RRType.TXT
            ):
                mutated += 1
                break
    assert mutated == count


def run(
    store=None,
    shards=0,
    execution="batch",
    loss=0.0,
    chaos=None,
    workers=1,
    world_spec=None,
    mutate=None,
    incremental=True,
):
    """One full measurement; returns the three byte-compared surfaces."""
    world = build_world(small_config(seed=SEED))
    if mutate is not None:
        mutate(world)
    if loss:
        world.network.inject_faults(loss_rate=loss, seed=SEED)
    config = HunterConfig(
        execution=execution,
        shards=shards,
        shard_workers=workers,
        incremental=incremental,
    )
    hunter = URHunter.from_world(world, config)
    if chaos:
        apply_scenario(load_scenario(chaos), world, hunter)
    hunter.world_spec = world_spec
    hunter.result_store = store
    trace = RunTrace()
    hunter.attach_trace(trace)
    report = hunter.run()
    doc = build_metrics_document(report, fingerprint="pinned")
    return (
        report.summary(),
        trace.deterministic_lines(),
        json.dumps(doc["deterministic"], sort_keys=True),
    )


@pytest.fixture(scope="module")
def cold():
    return run()


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("result-store")


@pytest.fixture(scope="module")
def populated(cold, store_dir):
    """The cold populate run: fills the store, must equal plain cold."""
    store = GroupResultStore(store_dir)
    surfaces = run(store=store)
    return surfaces, store


class TestWarmEqualsCold:
    def test_populate_run_matches_plain_cold(self, cold, populated):
        surfaces, store = populated
        assert surfaces == cold
        assert store.stats["hits"] == 0
        assert store.stats["stored"] == store.stats["misses"] > 0
        assert store.stats["uncacheable"] > 0

    def test_warm_batch(self, cold, populated, store_dir):
        store = GroupResultStore(store_dir)
        assert run(store=store) == cold
        assert store.stats["misses"] == store.stats["stored"] == 0
        assert store.stats["hits"] > 0

    def test_warm_streaming_sharded(self, cold, populated, store_dir):
        store = GroupResultStore(store_dir)
        assert run(store=store, execution="stream", shards=2) == cold
        assert store.stats["hits"] > 0
        assert store.stats["stored"] == 0

    def test_warm_process_pool(self, cold, populated, store_dir):
        store = GroupResultStore(store_dir)
        spec = WorldSpec(scenario=small_config(seed=SEED))
        surfaces = run(
            store=store, shards=2, workers=2, world_spec=spec
        )
        assert surfaces == cold
        assert store.stats["hits"] > 0

    def test_no_incremental_executes_everything(
        self, cold, populated, store_dir
    ):
        store = GroupResultStore(store_dir)
        assert run(store=store, incremental=False) == cold
        assert all(value == 0 for value in store.stats.values())


class TestMutationInvalidates:
    def test_warm_after_mutation_matches_cold_on_mutated_world(
        self, store_dir, populated
    ):
        cold_mutated = run(mutate=mutate_zones)
        store = GroupResultStore(store_dir)
        assert run(store=store, mutate=mutate_zones) == cold_mutated
        assert store.stats["invalidated"] > 0
        assert store.stats["hits"] > 0
        assert store.stats["stored"] == store.stats["invalidated"]

    def test_mutation_actually_changes_the_run(self, cold):
        assert run(mutate=mutate_zones) != cold

    def test_second_warm_run_hits_the_refreshed_slots(
        self, store_dir, populated
    ):
        # the previous test overwrote the invalidated slots; the same
        # mutated world now replays fully
        store = GroupResultStore(store_dir)
        run(store=store, mutate=mutate_zones)
        assert store.stats["invalidated"] == store.stats["misses"] == 0
        assert store.stats["hits"] > 0


class TestFaultedRunsBypass:
    def test_loss_run_matches_storeless_and_stores_nothing(self, tmp_path):
        baseline = run(loss=LOSS, shards=1)
        store = GroupResultStore(tmp_path / "store")
        assert run(store=store, loss=LOSS, shards=1) == baseline
        assert store.stats["bypassed_runs"] == 1
        assert store.identities() == []

    def test_chaos_run_matches_storeless(self, tmp_path):
        baseline = run(chaos=CHAOS, shards=1)
        store = GroupResultStore(tmp_path / "store")
        assert run(store=store, chaos=CHAOS, shards=1) == baseline
        assert store.stats["bypassed_runs"] == 1
        assert store.identities() == []

    def test_legacy_inline_faulted_run_ignores_the_store(self, tmp_path):
        # shards=0 + faults keeps the pre-plan inline scan: the store
        # must stay untouched and the run byte-identical to pre-store
        baseline = run(loss=LOSS)
        store = GroupResultStore(tmp_path / "store")
        assert run(store=store, loss=LOSS) == baseline
        assert all(value == 0 for value in store.stats.values())

    def test_populated_store_never_leaks_into_a_faulted_run(
        self, populated, store_dir
    ):
        baseline = run(loss=LOSS, shards=1)
        store = GroupResultStore(store_dir)
        assert run(store=store, loss=LOSS, shards=1) == baseline
        assert store.stats["hits"] == 0
        assert store.stats["bypassed_runs"] == 1


class TestLongitudinalWarmRuns:
    def test_study_with_store_matches_without(self, tmp_path):
        def churn(world, index):
            mutate_zones(world, count=2)

        # both studies pin shards=1 so every round takes the group
        # path: the legacy inline scan advances the clock query by
        # query while the group path advances it by the shard makespan,
        # so mixing paths would start round 1 at different epochs
        config = HunterConfig(shards=1)
        baseline = LongitudinalStudy(
            build_world(small_config(seed=SEED)),
            config=config,
            mutate=churn,
        )
        baseline.run(rounds=2)
        store = GroupResultStore(tmp_path / "store")
        warm = LongitudinalStudy(
            build_world(small_config(seed=SEED)),
            config=config,
            mutate=churn,
            result_store=store,
        )
        warm.run(rounds=2)

        def stripped(report):
            # the latency-percentile line is excluded across *epochs*:
            # a ~10ms clock delta rounds differently at clock magnitude
            # 1e6 than at 3.6e6 (float ulps), so replayed slots keep the
            # population epoch's bucket rounding — same-epoch warm runs
            # (every other test in this module) compare the full summary
            return "\n".join(
                line
                for line in report.summary().splitlines()
                if "latency p50" not in line
            )

        for ours, theirs in zip(warm.snapshots, baseline.snapshots):
            assert stripped(ours.report) == stripped(theirs.report)
        assert (
            warm.snapshots[0].report.summary()
            == baseline.snapshots[0].report.summary()
        )
        # round 0 populated, round 1 (thirty virtual days later)
        # replayed every group the churn hook left alone
        assert store.stats["hits"] > 0
        assert store.stats["invalidated"] > 0
        diffs = [diff.summary() for diff in warm.diffs()]
        assert diffs == [diff.summary() for diff in baseline.diffs()]
