"""Unit tests for the group result store: keys, slots, plan summaries.

The store's correctness argument rests on the two-level key: the
identity names the slot (stable across runs of the same plan), the
state digest decides replay (any change to the serving nameserver's
answer-relevant state, the provider policy, or the scan-shaping config
must invalidate).  These tests pin both directions — stability where
the world is unchanged, invalidation on every mutation class.
"""

import json

import pytest

from repro.core import HunterConfig, URHunter
from repro.dns.rdata import A
from repro.incremental import (
    STORE_FORMAT_VERSION,
    GroupResultStore,
    PlanSummaryError,
    diff_plan_summaries,
    group_identity,
    load_plan_summary,
    plan_summary_json,
    render_plan_diff,
    scan_config_fingerprint,
    server_fingerprint,
    state_digest,
)
from repro.scenario import build_world, small_config

SEED = 7


@pytest.fixture(scope="module")
def world():
    return build_world(small_config(seed=SEED))


@pytest.fixture(scope="module")
def hunter(world):
    return URHunter.from_world(world)


class TestGroupIdentity:
    def test_stable_across_world_rebuilds(self, hunter):
        other = URHunter.from_world(build_world(small_config(seed=SEED)))
        ours = [
            group_identity(hunter.plan, group)
            for group in hunter.plan.groups
        ]
        theirs = [
            group_identity(other.plan, group)
            for group in other.plan.groups
        ]
        assert ours == theirs

    def test_distinct_per_group(self, hunter):
        identities = [
            group_identity(hunter.plan, group)
            for group in hunter.plan.groups
        ]
        assert len(set(identities)) == len(identities)


class TestConfigFingerprint:
    def test_stable_for_equal_configs(self):
        assert scan_config_fingerprint(
            HunterConfig()
        ) == scan_config_fingerprint(HunterConfig())

    def test_scan_shaping_knobs_invalidate(self):
        base = scan_config_fingerprint(HunterConfig())
        assert scan_config_fingerprint(HunterConfig(timeout=9.0)) != base
        assert scan_config_fingerprint(HunterConfig(retries=5)) != base

    def test_perf_knobs_do_not_invalidate(self):
        # execution mode, worker counts, sharding, and the incremental
        # switch itself never change a group's computed outcome
        base = scan_config_fingerprint(HunterConfig())
        for config in (
            HunterConfig(execution="stream"),
            HunterConfig(shards=4, shard_workers=2),
            HunterConfig(stage2_workers=8),
            HunterConfig(incremental=False),
        ):
            assert scan_config_fingerprint(config) == base


class TestServerFingerprint:
    def test_cacheable_server_shape(self, world, hunter):
        fingerprint = None
        for group in hunter.plan.groups:
            fingerprint = server_fingerprint(
                world.network, group.server_ip
            )
            if fingerprint is not None:
                break
        assert fingerprint is not None
        assert set(fingerprint) == {
            "generation",
            "zones",
            "policy",
            "protective",
            "online",
        }

    def test_unknown_address_is_uncacheable(self, world):
        assert server_fingerprint(world.network, "198.51.100.254") is None

    def test_recursive_fallback_server_is_uncacheable(self, world, hunter):
        # the small world serves one group through a recursive-policy
        # nameserver; its answers depend on the wider network, so no
        # per-server stamp can make it safe to replay
        fingerprints = [
            server_fingerprint(world.network, group.server_ip)
            for group in hunter.plan.groups
        ]
        assert any(entry is None for entry in fingerprints)
        assert sum(entry is not None for entry in fingerprints) > len(
            fingerprints
        ) // 2

    def test_zone_mutation_changes_the_fingerprint(self):
        fresh = build_world(small_config(seed=SEED))
        scout = URHunter.from_world(fresh)
        for group in scout.plan.groups:
            before = server_fingerprint(fresh.network, group.server_ip)
            if before is not None:
                break
        service = fresh.network.dns_hosts()[group.server_ip]
        zone = service.zones[0]
        zone.add(zone.origin, A("203.0.113.99"), ttl=60)
        after = server_fingerprint(fresh.network, group.server_ip)
        assert after != before


class TestStateDigest:
    def test_every_component_invalidates(self, world, hunter):
        for group in hunter.plan.groups:
            server = server_fingerprint(world.network, group.server_ip)
            if server is not None:
                break
        identity = group_identity(hunter.plan, group)
        config_fp = scan_config_fingerprint(HunterConfig())
        base = state_digest(identity, server, "GoDaddy", config_fp)
        assert base == state_digest(
            identity, server, "GoDaddy", config_fp
        )
        assert state_digest(identity, server, "NameSilo", config_fp) != base
        other_fp = scan_config_fingerprint(HunterConfig(timeout=9.0))
        assert state_digest(identity, server, "GoDaddy", other_fp) != base
        bumped = dict(server, generation=server["generation"] + 1)
        assert state_digest(identity, bumped, "GoDaddy", config_fp) != base


class TestStoreSlots:
    def test_empty_store_misses(self, tmp_path):
        store = GroupResultStore(tmp_path / "store")
        assert store.get("abc", "digest") is None
        assert store.stats["misses"] == 1
        assert store.stats["hits"] == 0

    def test_put_then_get_hits(self, tmp_path):
        store = GroupResultStore(tmp_path / "store")
        payload = {"group": 3, "responses": ["..."]}
        store.put("abc", "digest-1", payload)
        assert store.get("abc", "digest-1") == payload
        assert store.stats == {
            "hits": 1,
            "misses": 0,
            "invalidated": 0,
            "stored": 1,
            "uncacheable": 0,
            "bypassed_runs": 0,
        }

    def test_stale_digest_invalidates(self, tmp_path):
        store = GroupResultStore(tmp_path / "store")
        store.put("abc", "digest-1", {"group": 3})
        assert store.get("abc", "digest-2") is None
        assert store.stats["invalidated"] == 1

    def test_foreign_format_invalidates(self, tmp_path):
        store = GroupResultStore(tmp_path)
        slot = tmp_path / "group-abc.json"
        slot.write_text(
            json.dumps(
                {
                    "format": STORE_FORMAT_VERSION + 1,
                    "digest": "digest-1",
                    "group": {},
                }
            )
        )
        assert store.get("abc", "digest-1") is None
        assert store.stats["invalidated"] == 1

    def test_torn_slot_degrades_to_a_miss(self, tmp_path):
        store = GroupResultStore(tmp_path)
        (tmp_path / "group-abc.json").write_text('{"format": 1, "dig')
        assert store.get("abc", "digest-1") is None
        assert store.stats["misses"] == 1

    def test_identities_are_sorted(self, tmp_path):
        store = GroupResultStore(tmp_path)
        store.put("bbb", "d", {})
        store.put("aaa", "d", {})
        assert store.identities() == ["aaa", "bbb"]

    def test_write_stats_artifact(self, tmp_path):
        store = GroupResultStore(tmp_path)
        store.put("aaa", "d", {})
        store.get("aaa", "d")
        target = store.write_stats()
        payload = json.loads(target.read_text())
        assert payload["format"] == STORE_FORMAT_VERSION
        assert payload["slots"] == 1
        assert payload["hits"] == 1
        assert payload["stored"] == 1


class TestPlanSummary:
    def test_dump_is_deterministic(self, hunter):
        other = URHunter.from_world(build_world(small_config(seed=SEED)))
        assert plan_summary_json(hunter.plan) == plan_summary_json(
            other.plan
        )

    def test_round_trip(self, tmp_path, hunter):
        dump = plan_summary_json(hunter.plan)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(dump))
        assert load_plan_summary(path) == dump

    @pytest.mark.parametrize(
        "content",
        [
            "not json at all {",
            json.dumps([1, 2, 3]),
            json.dumps({"format": 99, "groups": []}),
            json.dumps({"format": 1}),
            json.dumps({"format": 1, "groups": [{"server": "1.2.3.4"}]}),
        ],
    )
    def test_malformed_summaries_raise(self, tmp_path, content):
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.raises(PlanSummaryError):
            load_plan_summary(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PlanSummaryError):
            load_plan_summary(tmp_path / "absent.json")

    def test_diff_of_identical_plans(self, hunter):
        dump = plan_summary_json(hunter.plan)
        diff = diff_plan_summaries(dump, dump)
        assert diff["identical"]
        assert diff["added"] == diff["removed"] == diff["changed"] == []
        assert "identical" in render_plan_diff(diff)

    def test_diff_surfaces_structural_changes(self, hunter):
        old = plan_summary_json(hunter.plan)
        new = json.loads(json.dumps(old))
        new["plan"] = "0" * 64
        moved = new["groups"][0]["server"]
        new["groups"][0]["identity"] = "tampered"
        dropped = new["groups"][1]["server"]
        del new["groups"][1]
        new["groups"].append(
            {
                "index": 999,
                "server": "203.0.113.250",
                "units": 1,
                "identity": "fresh",
            }
        )
        diff = diff_plan_summaries(old, new)
        assert not diff["identical"]
        assert diff["changed"] == [moved]
        assert diff["removed"] == [dropped]
        assert diff["added"] == ["203.0.113.250"]
        rendered = render_plan_diff(diff)
        assert f"changed: {moved}" in rendered
        assert f"added: 203.0.113.250" in rendered
