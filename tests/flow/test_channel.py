"""Unit contract of the dataflow edges: bounded FIFO + EOS sentinel."""

import pytest

from repro.flow import Channel, ChannelError, FlowGraph, FlowStalled


class TestChannel:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="depth"):
            Channel("bad", 0)

    def test_fifo_order(self):
        channel = Channel("fifo", 3)
        for item in ("a", "b", "c"):
            channel.put(item)
        assert [channel.get() for _ in range(3)] == ["a", "b", "c"]

    def test_put_beyond_depth_raises(self):
        channel = Channel("tight", 1)
        channel.put("only")
        assert channel.full
        with pytest.raises(ChannelError, match="overfull"):
            channel.put("overflow")

    def test_put_after_close_raises(self):
        channel = Channel("eos", 2)
        channel.close()
        with pytest.raises(ChannelError, match="closed"):
            channel.put("late")

    def test_get_on_empty_raises(self):
        with pytest.raises(ChannelError, match="empty"):
            Channel("hollow", 2).get()

    def test_drained_requires_close_and_empty(self):
        channel = Channel("drain", 2)
        channel.put("item")
        assert not channel.drained
        channel.close()
        # closed but an item is still buffered
        assert not channel.drained
        channel.get()
        assert channel.drained

    def test_occupancy_accounting(self):
        channel = Channel("stats", 4)
        channel.put(1)
        channel.put(2)
        channel.get()
        channel.put(3)
        # high-water mark was 2, never the depth
        assert channel.max_occupancy == 2
        assert channel.total == 3
        assert len(channel) == 2


class _Deadbeat:
    """A node that can never progress — the stall detector's prey."""

    name = "deadbeat"
    done = False

    def step(self) -> bool:
        return False


class TestFlowGraph:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            FlowGraph([], [])

    def test_stall_is_detected_and_named(self):
        with pytest.raises(FlowStalled, match="deadbeat"):
            FlowGraph([_Deadbeat()], []).run()
