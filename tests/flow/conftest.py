"""Fixtures for the streaming-dataflow suite (``repro.flow``)."""

import pytest

from repro.core import HunterConfig, URHunter
from repro.scenario import build_world, small_config


def make_world(seed: int = 7):
    """A fresh small world (never shared: faulted runs mutate them)."""
    return build_world(small_config(seed=seed))


def stream_hunter(
    depth: int = 64, workers: int = 1, world=None, **overrides
) -> URHunter:
    """A hunter configured for streaming execution."""
    config = HunterConfig(
        execution="stream",
        channel_depth=depth,
        stage2_workers=workers,
        **overrides,
    )
    return URHunter.from_world(world or make_world(), config)


@pytest.fixture(scope="module")
def batch_summary() -> str:
    """The byte surface every streaming run must reproduce exactly."""
    return URHunter.from_world(make_world()).run().summary()
