"""Incremental segment checkpoints: mid-stream crash → resume →
byte-identical output, plus batch↔stream checkpoint interchange.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import URHunter
from repro.pipeline import (
    CheckpointStore,
    PipelineRunner,
    STAGE1,
    STAGE_ORDER,
    StageFailed,
)
from repro.pipeline.runner import CRASH_SEGMENT_ENV

from .conftest import make_world, stream_hunter

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI = [sys.executable, "-m", "repro", "--scale", "small"]
STREAM_ARGS = ["--execution", "stream", "--checkpoint-every", "5"]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("URHUNTER_CRASH_STAGE", None)
    env.pop(CRASH_SEGMENT_ENV, None)
    return env


def segment_files(directory: Path):
    return sorted(directory.glob(f"{CheckpointStore.SEGMENT_PREFIX}*"))


class TestRunnerStreamValidation:
    def test_stop_after_rejected_for_streaming(self):
        runner = PipelineRunner(stream_hunter())
        with pytest.raises(ValueError, match="fuses the stages"):
            runner.run(stop_after=STAGE1)

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            PipelineRunner(stream_hunter(), checkpoint_every=-1)


class TestSegmentLifecycle:
    def test_finished_stream_supersedes_segments(
        self, tmp_path, batch_summary
    ):
        result = PipelineRunner(
            stream_hunter(),
            store=CheckpointStore(tmp_path),
            checkpoint_every=5,
        ).run()
        assert result.executed == STAGE_ORDER
        assert result.report.summary() == batch_summary
        # segments were the in-flight medium; the stage checkpoints
        # replace them on success
        assert segment_files(tmp_path) == []
        for stage in STAGE_ORDER:
            assert (tmp_path / f"{stage}.json").exists()

    def test_crash_after_segment_then_resume(
        self, tmp_path, monkeypatch, batch_summary
    ):
        def explode(index: int) -> None:
            if index == 1:
                raise RuntimeError("injected mid-stream crash")

        monkeypatch.setattr(
            PipelineRunner, "_maybe_crash_segment", staticmethod(explode)
        )
        with pytest.raises(StageFailed, match="stream-flow"):
            PipelineRunner(
                stream_hunter(),
                store=CheckpointStore(tmp_path),
                checkpoint_every=5,
            ).run()
        # segments 0 and 1 were persisted before the crash; no stage
        # checkpoint exists yet
        assert len(segment_files(tmp_path)) == 2
        assert not (tmp_path / f"{STAGE1}.json").exists()
        failure = json.loads((tmp_path / "failure.json").read_text())
        assert failure["stage"] == "stream-flow"

        monkeypatch.undo()
        resumed = PipelineRunner(
            stream_hunter(),
            store=CheckpointStore(tmp_path),
            resume=True,
            checkpoint_every=5,
        ).run()
        assert "segments:2" in resumed.resumed
        assert resumed.report.summary() == batch_summary
        assert segment_files(tmp_path) == []
        assert not (tmp_path / "failure.json").exists()


class TestMixedModeResume:
    """Stage checkpoints interchange between execution modes: the
    fingerprint treats execution/channel_depth as perf knobs because the
    persisted stage results are byte-identical."""

    def test_stream_resumes_batch_checkpoints(
        self, tmp_path, batch_summary
    ):
        PipelineRunner(
            URHunter.from_world(make_world()),
            store=CheckpointStore(tmp_path),
        ).run()
        replayer = stream_hunter()
        replay = PipelineRunner(
            replayer, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert replay.resumed == STAGE_ORDER
        assert replay.executed == ()
        assert replayer.engine.metrics.queries == 0
        assert replay.report.summary() == batch_summary

    def test_batch_resumes_stream_checkpoints(
        self, tmp_path, batch_summary
    ):
        PipelineRunner(
            stream_hunter(), store=CheckpointStore(tmp_path)
        ).run()
        replayer = URHunter.from_world(make_world())
        replay = PipelineRunner(
            replayer, store=CheckpointStore(tmp_path), resume=True
        ).run()
        assert replay.resumed == STAGE_ORDER
        assert replayer.engine.metrics.queries == 0
        assert replay.report.summary() == batch_summary


class TestMidStreamKillAndResumeSubprocess:
    """The CI smoke test: SIGTERM right after a segment is persisted,
    resume, compare stdout byte-for-byte against an uninterrupted
    *batch* run — one subprocess matrix covers both invariants."""

    def test_sigterm_after_segment_then_resume(self, tmp_path):
        baseline = subprocess.run(
            CLI + ["run"],
            capture_output=True,
            env=cli_env(),
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert baseline.returncode == 0, baseline.stderr.decode()

        ckpt = tmp_path / "ckpt"
        crash_env = cli_env()
        crash_env[CRASH_SEGMENT_ENV] = "1"
        crashed = subprocess.run(
            CLI + STREAM_ARGS + ["--checkpoint-dir", str(ckpt), "run"],
            capture_output=True,
            env=crash_env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        # killed by SIGTERM: raw -15 or shell-style 143
        assert crashed.returncode in (-signal.SIGTERM, 143)
        assert len(segment_files(ckpt)) == 2
        assert not (ckpt / f"{STAGE1}.json").exists()

        resumed = subprocess.run(
            CLI
            + STREAM_ARGS
            + ["--checkpoint-dir", str(ckpt), "--resume", "run"],
            capture_output=True,
            env=cli_env(),
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert resumed.returncode == 0, resumed.stderr.decode()
        assert resumed.stdout == baseline.stdout
        assert b"segments:2" in resumed.stderr
        assert segment_files(ckpt) == []
