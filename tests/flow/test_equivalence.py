"""The tentpole invariant: the streaming report is byte-identical to
the batch report for any channel depth, worker count, and fault
schedule.

Every test here compares ``MeasurementReport.summary()`` — the byte
surface the CLI prints and CI diffs — between the two execution modes.
"""

import pytest

from repro.core import HunterConfig, URHunter
from repro.intel.aggregator import ThreatIntelAggregator
from repro.pipeline import (
    FaultPlan,
    FlakyIPInfo,
    FlakyPassiveDNS,
    FlakyVendor,
)

from .conftest import make_world, stream_hunter

DEPTHS = (1, 2, 16)
WORKERS = (1, 4)
FAULT_SEED = 11
FAULT_RATE = 0.2


def inject_faults(hunter: URHunter, world) -> URHunter:
    """Seeded faults on every stage-2/3 source (the chaos-suite plan)."""
    vendors = [
        FlakyVendor(
            vendor,
            FaultPlan(seed=FAULT_SEED + index, error_rate=FAULT_RATE),
        )
        for index, vendor in enumerate(world.vendors)
    ]
    hunter.intel = ThreatIntelAggregator(vendors)
    hunter.pdns = FlakyPassiveDNS(
        world.pdns,
        FaultPlan(seed=FAULT_SEED + 101, error_rate=FAULT_RATE),
    )
    hunter.stage2_ipinfo = FlakyIPInfo(
        world.ipinfo,
        FaultPlan(seed=FAULT_SEED + 202, error_rate=FAULT_RATE),
    )
    return hunter


class TestStreamEqualsBatch:
    @pytest.mark.parametrize("workers", WORKERS)
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_matrix_byte_identical(self, batch_summary, depth, workers):
        hunter = stream_hunter(depth=depth, workers=workers)
        assert hunter.run().summary() == batch_summary

    def test_memoization_off_still_identical(self):
        # memoization state is itself printed in the summary, so the
        # comparison is against a batch run with the same knob
        batch = URHunter.from_world(
            make_world(), HunterConfig(stage2_memoize=False)
        )
        stream = stream_hunter(stage2_memoize=False)
        assert stream.run().summary() == batch.run().summary()

    def test_channels_stay_bounded(self):
        hunter = stream_hunter(depth=2)
        hunter.run()
        stats = hunter.last_flow_stats
        assert stats is not None
        assert stats.max_occupancy <= 2
        # every edge actually carried traffic
        assert all(channel.total > 0 for channel in stats.channels)

    def test_batch_run_records_no_flow_stats(self):
        hunter = URHunter.from_world(make_world(), HunterConfig())
        hunter.run()
        assert hunter.last_flow_stats is None


class TestFaultedStreamEqualsFaultedBatch:
    """Same seeded fault plan → same degraded report, byte for byte.

    This is the hard half of the invariant: the streaming exclusion
    stage must issue source calls in exactly the batch order, or the
    call-count-seeded fault schedule would land on different records.
    """

    @pytest.fixture(scope="class")
    def faulted_batch(self):
        world = make_world()
        hunter = inject_faults(URHunter.from_world(world), world)
        return hunter.run()

    @pytest.mark.parametrize("depth", (1, 16))
    @pytest.mark.parametrize("workers", WORKERS)
    def test_fault_schedule_preserved(
        self, faulted_batch, depth, workers
    ):
        world = make_world()
        hunter = inject_faults(
            stream_hunter(depth=depth, workers=workers, world=world),
            world,
        )
        report = hunter.run()
        assert report.summary() == faulted_batch.summary()
        assert report.is_degraded == faulted_batch.is_degraded
