"""Equivalence tests: the indexed IpInfoDatabase vs the naive prefix scan.

Longest-prefix match through the length-bucketed index, the metadata
LRU, and the registration-invalidates-cache rules must all be invisible:
every lookup returns exactly what the O(prefixes) reference scan does,
including the first-registration tie-break for duplicate networks.
"""

import random

import pytest

from repro.intel.ipinfo import HttpPage, IpInfoDatabase


def _random_cidr(rng):
    prefixlen = rng.choice((8, 12, 16, 20, 24, 28))
    shift = 32 - prefixlen
    base = (rng.getrandbits(32) >> shift) << shift
    return (
        f"{(base >> 24) & 255}.{(base >> 16) & 255}."
        f"{(base >> 8) & 255}.{base & 255}/{prefixlen}"
    )


def _random_address(rng):
    value = rng.getrandbits(32)
    return (
        f"{(value >> 24) & 255}.{(value >> 16) & 255}."
        f"{(value >> 8) & 255}.{value & 255}"
    )


def _mirror_databases():
    return (
        IpInfoDatabase(indexed=True),
        IpInfoDatabase(indexed=False, cache_size=0),
    )


class TestPrefixIndexEquivalence:
    @pytest.mark.parametrize("seed", [1, 29, 333, 4096])
    def test_random_interleaved_registration_and_lookup(self, seed):
        rng = random.Random(seed)
        indexed, naive = _mirror_databases()
        for step in range(400):
            roll = rng.random()
            if roll < 0.25:
                cidr = _random_cidr(rng)
                asn = rng.randrange(1, 65000)
                country = rng.choice(["US", "DE", "JP", "BR"])
                for db in (indexed, naive):
                    db.register_prefix(cidr, asn, f"AS{asn}", country)
            elif roll < 0.35:
                address = _random_address(rng)
                cert = rng.choice([None, "Org A", "Org B"])
                for db in (indexed, naive):
                    db.register_host(address, cert_org=cert)
            else:
                address = _random_address(rng)
                assert indexed.lookup(address) == naive.lookup(address)

    def test_nested_prefixes_pick_longest_match(self):
        indexed, naive = _mirror_databases()
        for db in (indexed, naive):
            db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
            db.register_prefix("10.1.0.0/16", 200, "MID", "DE")
            db.register_prefix("10.1.2.0/24", 300, "NARROW", "JP")
        for address in ("10.9.9.9", "10.1.9.9", "10.1.2.9", "192.0.2.1"):
            assert indexed.lookup(address) == naive.lookup(address)
        assert indexed.asn("10.1.2.9") == 300
        assert indexed.asn("10.1.9.9") == 200
        assert indexed.asn("10.9.9.9") == 100
        assert indexed.asn("192.0.2.1") == IpInfoDatabase.UNKNOWN_ASN

    def test_duplicate_network_keeps_first_registration(self):
        indexed, naive = _mirror_databases()
        for db in (indexed, naive):
            db.register_prefix("10.0.0.0/8", 111, "FIRST", "US")
            db.register_prefix("10.0.0.0/8", 222, "SECOND", "DE")
        assert indexed.lookup("10.5.5.5") == naive.lookup("10.5.5.5")
        assert indexed.asn("10.5.5.5") == 111

    def test_registration_after_lookup_invalidates_index_and_cache(self):
        indexed, naive = _mirror_databases()
        for db in (indexed, naive):
            db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        assert indexed.lookup("10.1.2.3") == naive.lookup("10.1.2.3")
        # a longer prefix arriving later must supersede the cached answer
        for db in (indexed, naive):
            db.register_prefix("10.1.0.0/16", 200, "MID", "DE")
        assert indexed.lookup("10.1.2.3") == naive.lookup("10.1.2.3")
        assert indexed.asn("10.1.2.3") == 200

    def test_host_registration_supersedes_cached_prefix_answer(self):
        indexed, naive = _mirror_databases()
        for db in (indexed, naive):
            db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        assert indexed.cert_org("10.1.2.3") is None
        for db in (indexed, naive):
            db.register_host(
                "10.1.2.3", cert_org="Org X", http=HttpPage.parked()
            )
        assert indexed.lookup("10.1.2.3") == naive.lookup("10.1.2.3")
        assert indexed.cert_org("10.1.2.3") == "Org X"


class TestMetadataCache:
    def test_four_helpers_share_one_lookup(self):
        db = IpInfoDatabase(indexed=True)
        db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        db.asn("10.1.2.3")
        db.country("10.1.2.3")
        db.cert_org("10.1.2.3")
        db.http("10.1.2.3")
        # one miss assembled the metadata; the other three helpers hit
        assert db.cache_misses == 1
        assert db.cache_hits == 3

    def test_lru_evicts_oldest_entry(self):
        db = IpInfoDatabase(indexed=True, cache_size=2)
        db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        db.lookup("10.0.0.1")
        db.lookup("10.0.0.2")
        db.lookup("10.0.0.1")  # refresh 1 -> 2 becomes the eviction victim
        db.lookup("10.0.0.3")  # evicts 2
        hits_before = db.cache_hits
        db.lookup("10.0.0.1")
        assert db.cache_hits == hits_before + 1
        misses_before = db.cache_misses
        db.lookup("10.0.0.2")
        assert db.cache_misses == misses_before + 1

    def test_cache_disabled_still_correct(self):
        db = IpInfoDatabase(indexed=True, cache_size=0)
        db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        assert db.asn("10.1.2.3") == 100
        assert db.cache_hits == 0
        assert db.cache_misses == 0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            IpInfoDatabase(cache_size=-1)

    def test_invalid_address_still_raises(self):
        db = IpInfoDatabase(indexed=True)
        db.register_prefix("10.0.0.0/8", 100, "WIDE", "US")
        with pytest.raises(ValueError):
            db.lookup("not-an-ip")
