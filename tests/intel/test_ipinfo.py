"""Tests for repro.intel.ipinfo."""

import pytest

from repro.intel.ipinfo import (
    HttpPage,
    IpInfoDatabase,
    PAGE_KEYWORDS,
    PageKind,
)


@pytest.fixture
def db():
    database = IpInfoDatabase()
    database.register_prefix("10.1.0.0/16", 64501, "HostCo", "US")
    database.register_prefix("10.2.0.0/16", 64502, "RheinHosting", "DE")
    return database


class TestPrefixDefaults:
    def test_lookup_inherits_prefix(self, db):
        meta = db.lookup("10.1.5.5")
        assert meta.asn == 64501
        assert meta.as_name == "HostCo"
        assert meta.country == "US"

    def test_unknown_address(self, db):
        meta = db.lookup("172.31.0.1")
        assert meta.asn == IpInfoDatabase.UNKNOWN_ASN
        assert meta.country == "ZZ"

    def test_longest_prefix_wins(self, db):
        db.register_prefix("10.1.7.0/24", 64999, "SubTenant", "NL")
        assert db.asn("10.1.7.9") == 64999
        assert db.asn("10.1.8.9") == 64501

    def test_invalid_address_raises(self, db):
        with pytest.raises(Exception):
            db.lookup("999.1.1.1")


class TestHostOverrides:
    def test_register_host_merges_prefix_defaults(self, db):
        db.register_host("10.1.5.5", cert_org="Example Inc")
        meta = db.lookup("10.1.5.5")
        assert meta.cert_org == "Example Inc"
        assert meta.asn == 64501

    def test_register_host_explicit_overrides(self, db):
        db.register_host(
            "10.1.5.6", asn=65000, as_name="Custom", country="SC"
        )
        meta = db.lookup("10.1.5.6")
        assert (meta.asn, meta.as_name, meta.country) == (
            65000,
            "Custom",
            "SC",
        )

    def test_accessors(self, db):
        db.register_host(
            "10.2.1.1", cert_org="X", http=HttpPage.parked()
        )
        assert db.country("10.2.1.1") == "DE"
        assert db.cert_org("10.2.1.1") == "X"
        assert db.http("10.2.1.1").kind is PageKind.PARKED
        assert db.cert_org("10.2.9.9") is None

    def test_known_hosts(self, db):
        db.register_host("10.1.0.1")
        assert "10.1.0.1" in db.known_hosts()


class TestHttpPage:
    def test_none_page(self):
        page = HttpPage.none()
        assert page.kind is PageKind.NONE
        assert page.status == 0

    def test_parked_page_matches_keywords(self):
        page = HttpPage.parked()
        assert page.contains_keywords(PAGE_KEYWORDS[PageKind.PARKED])

    def test_redirect_page_matches_keywords(self):
        page = HttpPage.redirect("https://elsewhere.example/")
        assert page.contains_keywords(PAGE_KEYWORDS[PageKind.REDIRECT])

    def test_warning_page_mentions_provider(self):
        page = HttpPage.warning("ClouDNS")
        assert "ClouDNS" in page.body
        assert page.kind is PageKind.WARNING

    def test_normal_page_matches_nothing(self):
        page = HttpPage(status=200, title="Shop", body="Buy things")
        for keywords in PAGE_KEYWORDS.values():
            assert not page.contains_keywords(keywords)

    def test_keyword_match_case_insensitive(self):
        page = HttpPage(status=200, title="PARKED DOMAIN", body="")
        assert page.contains_keywords(PAGE_KEYWORDS[PageKind.PARKED])
