"""Tests for repro.intel.pdns: the passive-DNS history store."""

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.pdns import SIX_YEARS, PassiveDnsStore


class TestObservation:
    def test_observe_and_query(self):
        store = PassiveDnsStore()
        store.observe("example.com", RRType.A, "192.0.2.1", 1000.0)
        history = store.history("example.com", now=2000.0)
        assert len(history) == 1
        assert history[0].rdata_text == "192.0.2.1"

    def test_first_last_seen_widen(self):
        store = PassiveDnsStore()
        store.observe("example.com", RRType.A, "192.0.2.1", 500.0)
        store.observe("example.com", RRType.A, "192.0.2.1", 100.0)
        store.observe("example.com", RRType.A, "192.0.2.1", 900.0)
        (observation,) = store.history("example.com", now=1000.0)
        assert observation.first_seen == 100.0
        assert observation.last_seen == 900.0

    def test_len_counts_unique_triples(self):
        store = PassiveDnsStore()
        store.observe("a.com", RRType.A, "1.1.1.1", 1.0)
        store.observe("a.com", RRType.A, "1.1.1.1", 2.0)
        store.observe("a.com", RRType.A, "2.2.2.2", 3.0)
        assert len(store) == 2


class TestWindowing:
    def test_horizon_excludes_ancient_records(self):
        store = PassiveDnsStore(horizon=100.0)
        store.observe("example.com", RRType.A, "192.0.2.1", 10.0)
        assert store.history("example.com", now=50.0)
        assert not store.history("example.com", now=500.0)

    def test_future_observations_excluded(self):
        store = PassiveDnsStore()
        store.observe("example.com", RRType.A, "192.0.2.1", 9_999.0)
        assert not store.history("example.com", now=100.0)

    def test_six_year_default(self):
        store = PassiveDnsStore()
        assert store.horizon == SIX_YEARS
        two_years = 2 * 365 * 24 * 3600.0
        store.observe("example.com", RRType.A, "192.0.2.1", 0.0)
        assert store.record_in_history(
            "example.com", RRType.A, "192.0.2.1", now=two_years
        )
        assert not store.record_in_history(
            "example.com", RRType.A, "192.0.2.1", now=SIX_YEARS + two_years
        )


class TestQueries:
    def test_record_in_history_appendix_b(self):
        store = PassiveDnsStore()
        store.observe("example.com", RRType.A, "192.0.2.1", 100.0)
        assert store.record_in_history(
            "example.com", RRType.A, "192.0.2.1", now=200.0
        )
        assert not store.record_in_history(
            "example.com", RRType.A, "6.6.6.6", now=200.0
        )
        assert not store.record_in_history(
            "other.com", RRType.A, "192.0.2.1", now=200.0
        )

    def test_type_filter(self):
        store = PassiveDnsStore()
        store.observe("example.com", RRType.A, "192.0.2.1", 100.0)
        store.observe("example.com", RRType.TXT, "v=spf1 -all", 100.0)
        assert len(store.history("example.com", 200.0, RRType.TXT)) == 1
        assert store.historical_rdata("example.com", RRType.A, 200.0) == {
            "192.0.2.1"
        }

    def test_delegation_history(self):
        store = PassiveDnsStore()
        store.observe_delegation(
            "example.com", ["ns1.old.net", "ns2.old.net"], 100.0
        )
        servers = store.historical_nameservers("example.com", now=200.0)
        assert name("ns1.old.net") in servers
        assert name("ns2.old.net") in servers

    def test_domains(self):
        store = PassiveDnsStore()
        store.observe("a.com", RRType.A, "1.1.1.1", 1.0)
        store.observe("b.com", RRType.A, "1.1.1.1", 1.0)
        assert store.domains() == {name("a.com"), name("b.com")}
