"""Tests for repro.intel.vendor and repro.intel.aggregator."""

import pytest

from repro.intel.aggregator import ThreatIntelAggregator
from repro.intel.vendor import (
    IntelTag,
    SecurityVendor,
    default_vendor_fleet,
)


class TestSecurityVendor:
    def test_flag_and_query(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6", [IntelTag.TROJAN])
        assert vendor.is_malicious("6.6.6.6")
        assert vendor.tags("6.6.6.6") == {IntelTag.TROJAN}

    def test_unflagged_address(self):
        vendor = SecurityVendor("VT")
        assert not vendor.is_malicious("1.1.1.1")
        assert vendor.tags("1.1.1.1") == frozenset()

    def test_tags_merge_on_reflag(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6", [IntelTag.TROJAN])
        vendor.flag("6.6.6.6", [IntelTag.CC])
        assert vendor.tags("6.6.6.6") == {IntelTag.TROJAN, IntelTag.CC}

    def test_first_seen_preserved(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6", timestamp=100.0)
        vendor.flag("6.6.6.6", timestamp=200.0)
        assert vendor.verdict("6.6.6.6").first_seen == 100.0

    def test_clear_delists(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6")
        vendor.clear("6.6.6.6")
        assert not vendor.is_malicious("6.6.6.6")

    def test_blacklist_and_len(self):
        vendor = SecurityVendor("VT")
        vendor.flag("6.6.6.6")
        vendor.flag("7.7.7.7")
        assert set(vendor.blacklist()) == {"6.6.6.6", "7.7.7.7"}
        assert len(vendor) == 2


class TestDefaultFleet:
    def test_named_vendors_first(self):
        fleet = default_vendor_fleet(5)
        assert [vendor.name for vendor in fleet[:3]] == [
            "VirusTotal",
            "QAX",
            "360 Security",
        ]
        assert len(fleet) == 5

    def test_small_fleet(self):
        fleet = default_vendor_fleet(2)
        assert [vendor.name for vendor in fleet] == ["VirusTotal", "QAX"]


class TestAggregator:
    @pytest.fixture
    def fleet(self):
        fleet = default_vendor_fleet(4)
        fleet[0].flag("6.6.6.6", [IntelTag.TROJAN])
        fleet[1].flag("6.6.6.6", [IntelTag.BOTNET])
        fleet[2].flag("7.7.7.7", [IntelTag.SCANNER])
        return fleet

    def test_requires_vendors(self):
        with pytest.raises(ValueError):
            ThreatIntelAggregator([])

    def test_report_merges_tags(self, fleet):
        aggregator = ThreatIntelAggregator(fleet)
        report = aggregator.report("6.6.6.6")
        assert report.is_malicious
        assert report.vendor_count == 2
        assert report.tags == {IntelTag.TROJAN, IntelTag.BOTNET}
        assert report.flagging_vendors == {"VirusTotal", "QAX"}

    def test_clean_address(self, fleet):
        aggregator = ThreatIntelAggregator(fleet)
        report = aggregator.report("9.9.9.9")
        assert not report.is_malicious
        assert report.vendor_count == 0

    def test_is_flagged_and_count(self, fleet):
        aggregator = ThreatIntelAggregator(fleet)
        assert aggregator.is_flagged("7.7.7.7")
        assert aggregator.vendor_count("7.7.7.7") == 1
        assert not aggregator.is_flagged("9.9.9.9")

    def test_union_blacklist(self, fleet):
        aggregator = ThreatIntelAggregator(fleet)
        assert set(aggregator.union_blacklist()) == {"6.6.6.6", "7.7.7.7"}

    def test_bulk_report(self, fleet):
        aggregator = ThreatIntelAggregator(fleet)
        reports = aggregator.bulk_report(["6.6.6.6", "9.9.9.9"])
        assert reports["6.6.6.6"].is_malicious
        assert not reports["9.9.9.9"].is_malicious


class CountingVendor(SecurityVendor):
    """A vendor that counts its read traffic (cache verification)."""

    def __init__(self, name):
        super().__init__(name)
        self.reads = 0

    def is_malicious(self, address):
        self.reads += 1
        return super().is_malicious(address)


class TestAggregatorCache:
    @pytest.fixture
    def vendor(self):
        vendor = CountingVendor("VT")
        vendor.flag("6.6.6.6", [IntelTag.TROJAN])
        return vendor

    def test_report_is_memoized(self, vendor):
        aggregator = ThreatIntelAggregator([vendor])
        first = aggregator.report("6.6.6.6")
        second = aggregator.report("6.6.6.6")
        assert first == second
        assert vendor.reads == 1
        info = aggregator.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_query_helpers_share_one_probe(self, vendor):
        # is_flagged + vendor_count + tags used to cost three vendor
        # round-trips each; they now share one cached report
        aggregator = ThreatIntelAggregator([vendor])
        assert aggregator.is_flagged("6.6.6.6")
        assert aggregator.vendor_count("6.6.6.6") == 1
        assert aggregator.tags("6.6.6.6") == {IntelTag.TROJAN}
        assert vendor.reads == 1

    def test_flag_invalidates_cached_verdict(self, vendor):
        aggregator = ThreatIntelAggregator([vendor])
        assert not aggregator.is_flagged("9.9.9.9")
        vendor.flag("9.9.9.9")
        # the fleet version bumped: the stale entry must not be served
        assert aggregator.is_flagged("9.9.9.9")

    def test_clear_invalidates_cached_verdict(self, vendor):
        aggregator = ThreatIntelAggregator([vendor])
        assert aggregator.is_flagged("6.6.6.6")
        vendor.clear("6.6.6.6")
        assert not aggregator.is_flagged("6.6.6.6")

    def test_lru_eviction_bounds_the_cache(self, vendor):
        aggregator = ThreatIntelAggregator([vendor], cache_size=2)
        for address in ("1.1.1.1", "2.2.2.2", "3.3.3.3"):
            aggregator.report(address)
        info = aggregator.cache_info()
        assert info["size"] == 2
        assert info["max_size"] == 2
        # the oldest entry was evicted: re-reading it is a miss
        reads_before = vendor.reads
        aggregator.report("1.1.1.1")
        assert vendor.reads == reads_before + 1

    def test_cache_clear(self, vendor):
        aggregator = ThreatIntelAggregator([vendor])
        aggregator.report("6.6.6.6")
        aggregator.cache_clear()
        assert aggregator.cache_info()["size"] == 0

    def test_cache_size_validation(self, vendor):
        with pytest.raises(ValueError):
            ThreatIntelAggregator([vendor], cache_size=0)

    def test_failed_vendor_excluded_from_quorum(self):
        from repro.pipeline import FaultPlan, FlakyVendor

        healthy = SecurityVendor("QAX")
        healthy.flag("6.6.6.6")
        broken = SecurityVendor("VT")
        broken.flag("6.6.6.6")
        aggregator = ThreatIntelAggregator(
            [FlakyVendor(broken, FaultPlan(dead=True)), healthy]
        )
        report = aggregator.report("6.6.6.6")
        assert report.is_malicious
        assert report.flagging_vendors == {"QAX"}
        assert report.failed_vendors == {"VT"}
        assert report.is_partial
