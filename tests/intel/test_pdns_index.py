"""Equivalence tests: the indexed PassiveDnsStore vs the naive scan.

The indexed store must return *exactly* what the reference
O(observations) implementation returns — same elements, same order —
under any interleaving of ingest and query, including queries whose
cached results an ingest must invalidate.
"""

import random

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.intel.pdns import PassiveDnsStore

DOMAINS = [f"dom{i}.example" for i in range(12)]
RRTYPES = (RRType.A, RRType.TXT, RRType.NS, RRType.MX)
RDATA = [f"198.51.100.{i}" for i in range(8)] + ["v=spf1 -all", "token"]


def _mirror_stores(horizon=1_000.0):
    return (
        PassiveDnsStore(horizon=horizon, indexed=True),
        PassiveDnsStore(horizon=horizon, indexed=False),
    )


def _assert_equivalent(indexed, naive, domain, now, rrtype):
    fast = indexed.history(domain, now, rrtype)
    slow = naive.history(domain, now, rrtype)
    assert fast == slow  # same observations in the same order
    if rrtype is not None:
        assert indexed.historical_rdata(
            domain, rrtype, now
        ) == naive.historical_rdata(domain, rrtype, now)


class TestRandomizedInterleavings:
    @pytest.mark.parametrize("seed", [3, 17, 91, 2024])
    def test_indexed_matches_naive_scan(self, seed):
        rng = random.Random(seed)
        indexed, naive = _mirror_stores()
        for _ in range(600):
            if rng.random() < 0.55:
                domain = rng.choice(DOMAINS)
                rrtype = rng.choice(RRTYPES)
                rdata = rng.choice(RDATA)
                stamp = rng.uniform(0.0, 3_000.0)
                indexed.observe(domain, rrtype, rdata, stamp)
                naive.observe(domain, rrtype, rdata, stamp)
            else:
                domain = rng.choice(DOMAINS + ["never-seen.example"])
                now = rng.uniform(0.0, 3_500.0)
                rrtype = rng.choice(RRTYPES + (None,))
                _assert_equivalent(indexed, naive, domain, now, rrtype)
        assert len(indexed) == len(naive)
        assert indexed.domains() == naive.domains()

    @pytest.mark.parametrize("seed", [5, 41])
    def test_repeated_queries_hit_the_cache(self, seed):
        rng = random.Random(seed)
        indexed, naive = _mirror_stores()
        for _ in range(80):
            domain = rng.choice(DOMAINS)
            rrtype = rng.choice(RRTYPES)
            rdata = rng.choice(RDATA)
            stamp = rng.uniform(0.0, 900.0)
            indexed.observe(domain, rrtype, rdata, stamp)
            naive.observe(domain, rrtype, rdata, stamp)
        for _ in range(50):
            domain = rng.choice(DOMAINS)
            rrtype = rng.choice(RRTYPES)
            _assert_equivalent(indexed, naive, domain, 950.0, rrtype)
        assert indexed.cache_hits > 0
        # the cache must never change answers, only skip rescans
        assert indexed.cache_hits + indexed.cache_misses > 0


class TestIngestAfterQueryInvalidation:
    def test_ingest_invalidates_cached_history(self):
        indexed, naive = _mirror_stores()
        for store in (indexed, naive):
            store.observe("dom0.example", RRType.A, "198.51.100.1", 10.0)
        _assert_equivalent(indexed, naive, "dom0.example", 100.0, RRType.A)
        # same key queried again -> served from cache
        before = indexed.cache_hits
        _assert_equivalent(indexed, naive, "dom0.example", 100.0, RRType.A)
        assert indexed.cache_hits > before
        # an ingest for a *different* domain still drops the whole cache
        for store in (indexed, naive):
            store.observe("dom1.example", RRType.A, "198.51.100.2", 20.0)
            store.observe("dom0.example", RRType.A, "198.51.100.3", 30.0)
        fast = indexed.history("dom0.example", 100.0, RRType.A)
        slow = naive.history("dom0.example", 100.0, RRType.A)
        assert fast == slow
        assert [obs.rdata_text for obs in fast] == [
            "198.51.100.1",
            "198.51.100.3",
        ]

    def test_widening_timestamps_refreshes_window_answers(self):
        indexed, naive = _mirror_stores(horizon=50.0)
        for store in (indexed, naive):
            store.observe("dom0.example", RRType.A, "198.51.100.1", 10.0)
        # out of window at now=100 (last_seen 10 < 100 - 50)
        assert indexed.history("dom0.example", 100.0) == []
        for store in (indexed, naive):
            store.observe("dom0.example", RRType.A, "198.51.100.1", 90.0)
        _assert_equivalent(indexed, naive, "dom0.example", 100.0, RRType.A)
        assert len(indexed.history("dom0.example", 100.0)) == 1


class TestIndexedQueryInterface:
    def test_record_in_history_matches_naive(self):
        indexed, naive = _mirror_stores()
        for store in (indexed, naive):
            store.observe("dom2.example", RRType.TXT, "v=spf1 -all", 5.0)
        for rdata in ("v=spf1 -all", "v=spf1 +all"):
            assert indexed.record_in_history(
                "dom2.example", RRType.TXT, rdata, 100.0
            ) == naive.record_in_history(
                "dom2.example", RRType.TXT, rdata, 100.0
            )

    def test_historical_nameservers_matches_naive(self):
        indexed, naive = _mirror_stores()
        for store in (indexed, naive):
            store.observe_delegation(
                "dom3.example", ["ns1.host.example", "ns2.host.example"], 7.0
            )
        assert indexed.historical_nameservers(
            "dom3.example", 100.0
        ) == naive.historical_nameservers("dom3.example", 100.0)

    def test_returned_collections_are_copies(self):
        store = PassiveDnsStore(indexed=True)
        store.observe("dom4.example", RRType.A, "198.51.100.9", 1.0)
        first = store.history("dom4.example", 10.0)
        first.append("garbage")
        assert len(store.history("dom4.example", 10.0)) == 1
        rdata = store.historical_rdata("dom4.example", RRType.A, 10.0)
        rdata.add("garbage")
        assert store.historical_rdata("dom4.example", RRType.A, 10.0) == {
            "198.51.100.9"
        }

    def test_domains_view_matches_naive(self):
        indexed, naive = _mirror_stores()
        for store in (indexed, naive):
            store.observe("dom5.example", RRType.A, "198.51.100.4", 1.0)
            store.observe("dom6.example", RRType.NS, "ns.h.example.", 2.0)
        assert indexed.domains() == naive.domains()
        assert indexed.domains() == {
            name("dom5.example"),
            name("dom6.example"),
        }
