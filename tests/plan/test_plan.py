"""Property-style tests of the scan-plan IR.

The plan hash is the identity contract of stage 1: a pure function of
the world fingerprint and the scan-shaping config knobs, invariant
under shard count, worker count, engine choice, execution mode, and
the iteration order of the world's dicts and sets.  These tests pin
that contract — a hash that moved under an execution knob would let a
sharded run silently execute a different scan than the one the
checkpoint fingerprint promises.
"""

import random

import pytest

from repro.core import HunterConfig, URHunter
from repro.plan.scanplan import build_plan
from repro.scenario import build_world, small_config

SEED = 7


def make_hunter(**overrides):
    world = build_world(small_config(seed=SEED))
    return URHunter.from_world(world, HunterConfig(**overrides))


@pytest.fixture(scope="module")
def hunter():
    return make_hunter()


@pytest.fixture(scope="module")
def plan(hunter):
    return hunter.plan


class TestHashPurity:
    def test_hash_is_64_hex(self, plan):
        assert len(plan.plan_hash) == 64
        int(plan.plan_hash, 16)

    def test_rebuilt_world_reproduces_the_hash(self, plan):
        assert make_hunter().plan.plan_hash == plan.plan_hash

    def test_scan_seed_changes_the_hash(self, plan):
        assert make_hunter(seed=2).plan.plan_hash != plan.plan_hash

    def test_world_changes_the_hash(self, plan):
        world = build_world(small_config(seed=SEED + 1))
        other = URHunter.from_world(world)
        assert other.plan.plan_hash != plan.plan_hash

    def test_fingerprint_binds_the_plan(self, hunter):
        world = build_world(small_config(seed=SEED + 1))
        other = URHunter.from_world(world)
        assert hunter._config_fingerprint() != other._config_fingerprint()


class TestHashInvariance:
    """Execution knobs must never leak into the plan identity."""

    def test_invariant_under_shard_and_worker_counts(self, plan):
        for shards, workers in ((1, 1), (2, 1), (4, 2)):
            varied = make_hunter(shards=shards, shard_workers=workers)
            assert varied.plan.plan_hash == plan.plan_hash

    def test_invariant_under_engine_choice(self, plan):
        varied = make_hunter(engine="sequential")
        assert varied.plan.plan_hash == plan.plan_hash

    def test_invariant_under_execution_mode(self, plan):
        varied = make_hunter(execution="stream", channel_depth=3)
        assert varied.plan.plan_hash == plan.plan_hash

    def test_invariant_under_delegation_dict_order(self, hunter, plan):
        items = list(hunter.delegated_to.items())
        shuffled = list(items)
        random.Random(0).shuffle(shuffled)
        for variant in (dict(reversed(items)), dict(shuffled)):
            rebuilt = build_plan(
                hunter.nameservers,
                hunter.domains,
                variant,
                hunter.open_resolver_ips,
                hunter.config,
            )
            assert rebuilt.plan_hash == plan.plan_hash
            assert rebuilt.ur_units == plan.ur_units


class TestEnumerationContract:
    """The plan replays the collector's legacy draw sequence exactly:
    one ``Random(seed)``, correct matrix shuffled first, UR second,
    protective never."""

    def test_draw_for_draw_shuffle_replication(self, hunter, plan):
        rng = random.Random(hunter.config.seed)
        correct = [
            (resolver_ip, target.domain.to_text(), int(qtype))
            for resolver_ip in hunter.open_resolver_ips
            for target in hunter.domains
            for qtype in hunter.config.query_types
        ]
        rng.shuffle(correct)
        ur = [
            (nameserver.address, target.domain.to_text(), int(qtype))
            for nameserver in hunter.nameservers
            for target in hunter.domains
            if nameserver.address
            not in hunter.delegated_to.get(target.domain, set())
            for qtype in hunter.config.query_types
        ]
        rng.shuffle(ur)
        assert [
            (u.server_ip, u.qname.to_text(), int(u.qtype))
            for u in plan.correct_units
        ] == correct
        assert [
            (u.server_ip, u.qname.to_text(), int(u.qtype))
            for u in plan.ur_units
        ] == ur

    def test_protective_units_are_unshuffled(self, hunter, plan):
        expected = [
            (nameserver.address, int(qtype))
            for nameserver in hunter.nameservers
            for qtype in hunter.config.query_types
        ]
        assert [
            (u.server_ip, int(u.qtype)) for u in plan.protective_units
        ] == expected

    def test_only_ur_units_carry_nameserver_tags(self, plan):
        assert all(u.tag is not None for u in plan.ur_units)
        assert all(u.tag is None for u in plan.protective_units)
        assert all(not u.recursion_desired for u in plan.ur_units)
        assert all(u.recursion_desired for u in plan.correct_units)


class TestShardPartition:
    def test_union_is_the_whole_plan_and_disjoint(self, plan):
        for count in (1, 2, 3, 4, 7):
            indices = [
                group.index
                for shard in plan.shard(count)
                for group in shard.groups
            ]
            assert sorted(indices) == list(range(len(plan.groups)))

    def test_membership_depends_only_on_plan_and_count(self, plan):
        again = make_hunter(shards=4, shard_workers=2).plan
        layout = lambda p: [  # noqa: E731
            [g.index for g in s.groups] for s in p.shard(4)
        ]
        assert layout(plan) == layout(again)

    def test_groups_cover_all_ur_units_once(self, plan):
        indices = sorted(
            index
            for group in plan.groups
            for index in group.unit_indices
        )
        assert indices == list(range(len(plan.ur_units)))

    def test_groups_are_single_nameserver(self, plan):
        for group in plan.groups:
            servers = {
                plan.ur_units[index].server_ip
                for index in group.unit_indices
            }
            assert servers == {group.server_ip}

    def test_invalid_shard_count_raises(self, plan):
        with pytest.raises(ValueError):
            plan.shard(0)

    def test_summary_is_deterministic(self, plan):
        assert plan.summary(shards=4) == make_hunter().plan.summary(
            shards=4
        )
        assert plan.plan_hash in plan.summary()
