"""Sharded stage-1 equivalence: the merged run is byte-identical.

The acceptance invariant of the shard runner: for every shard count,
worker count, and execution mode, the report summary, the trace's
deterministic section, and the metrics document's deterministic
section are byte-identical to the single-shard baseline — clean,
faulted, and resumed from on-disk shard partials.  A clean sharded run
additionally matches the legacy in-line scan exactly; faulted runs
only promise shard-count invariance (the per-group fault-RNG
isolation necessarily draws losses in a different order than the
legacy single-stream scan).
"""

import json

import pytest

from repro.core import HunterConfig, URHunter
from repro.obs import RunTrace
from repro.obs.metrics import build_metrics_document
from repro.pipeline import CheckpointStore
from repro.plan.pool import WorldSpec
from repro.resilience.scenario import apply_scenario, load_scenario
from repro.scenario import build_world, small_config

SEED = 7
LOSS = 0.15
CHAOS = "tail-latency-storm"


def run(
    shards,
    execution="batch",
    loss=0.0,
    chaos=None,
    workers=1,
    world_spec=None,
    store=None,
):
    """One full measurement; returns the three byte-compared surfaces."""
    world = build_world(small_config(seed=SEED))
    if loss:
        world.network.inject_faults(loss_rate=loss, seed=SEED)
    config = HunterConfig(
        execution=execution, shards=shards, shard_workers=workers
    )
    hunter = URHunter.from_world(world, config)
    if chaos:
        apply_scenario(load_scenario(chaos), world, hunter)
    hunter.world_spec = world_spec
    if store is not None:
        hunter.shard_store = store
    trace = RunTrace()
    hunter.attach_trace(trace)
    report = hunter.run()
    doc = build_metrics_document(report, fingerprint="pinned")
    return (
        report.summary(),
        trace.deterministic_lines(),
        json.dumps(doc["deterministic"], sort_keys=True),
    )


@pytest.fixture(scope="module")
def clean_legacy():
    return run(0)


@pytest.fixture(scope="module")
def clean_s1():
    return run(1)


@pytest.fixture(scope="module")
def clean_s2():
    return run(2)


@pytest.fixture(scope="module")
def faulted_s1():
    return run(1, loss=LOSS)


class TestCleanEquivalence:
    def test_single_shard_matches_the_legacy_scan(
        self, clean_legacy, clean_s1
    ):
        assert clean_s1 == clean_legacy

    def test_invariant_under_shard_count(self, clean_s1, clean_s2):
        assert clean_s2 == clean_s1

    def test_invariant_under_streaming_execution(self, clean_s1):
        assert run(2, execution="stream") == clean_s1

    def test_plan_built_event_names_the_hash(self, clean_s1):
        world = build_world(small_config(seed=SEED))
        hunter = URHunter.from_world(world)
        (built,) = [
            json.loads(line)
            for line in clean_s1[1]
            if '"event":"plan.built"' in line
        ]
        assert built["hash"] == hunter.plan.plan_hash
        assert built["groups"] == len(hunter.plan.groups)
        assert built["ur"] == len(hunter.plan.ur_units)

    def test_run_end_accounts_for_every_query(self, clean_s2):
        (run_end,) = [
            json.loads(line)
            for line in clean_s2[1]
            if '"event":"run.end"' in line
        ]
        assert run_end["unaccounted"] == 0


class TestFaultedEquivalence:
    """Loss and chaos schedules: shard-count and execution-mode
    invariant (baseline shards=1, per the module docstring)."""

    def test_loss_invariant_under_shard_count(self, faulted_s1):
        assert run(4, loss=LOSS) == faulted_s1

    def test_loss_invariant_under_streaming_execution(self, faulted_s1):
        assert run(2, loss=LOSS, execution="stream") == faulted_s1

    def test_loss_actually_bites(self, faulted_s1, clean_s1):
        assert faulted_s1 != clean_s1

    def test_chaos_invariant_under_shard_count(self):
        assert run(4, chaos=CHAOS) == run(1, chaos=CHAOS)


class TestShardResume:
    """Partials persist per shard; a fresh hunter over the same store
    re-executes only the missing shards and merges byte-identically."""

    def test_resume_from_partial_store(self, tmp_path, clean_s1):
        store = CheckpointStore(str(tmp_path))
        store.prepare("shard-resume", resume=False)
        first = run(2, store=store)
        assert first == clean_s1
        partials = sorted(
            path.name for path in tmp_path.glob("shard-part-*.json")
        )
        assert partials == [
            "shard-part-00000.json",
            "shard-part-00001.json",
        ]
        # simulate a crash that only persisted shard 0
        (tmp_path / "shard-part-00001.json").unlink()
        resumed = run(2, store=CheckpointStore(str(tmp_path)))
        assert resumed == clean_s1

    def test_mismatched_partials_are_ignored(self, tmp_path, clean_s1):
        store = CheckpointStore(str(tmp_path))
        store.prepare("shard-stale", resume=False)
        stale = tmp_path / "shard-part-00000.json"
        stale.write_text(
            json.dumps(
                {"shard": 0, "shards": 2, "plan": "0" * 64, "groups": []}
            )
        )
        assert run(2, store=store) == clean_s1


class TestProcessPool:
    def test_pooled_shards_match_in_process(self, clean_s2):
        spec = WorldSpec(scenario=small_config(seed=SEED))
        assert run(2, workers=2, world_spec=spec) == clean_s2

    def test_pooled_faulted_shards_match_in_process(self, faulted_s1):
        spec = WorldSpec(
            scenario=small_config(seed=SEED),
            loss_rate=LOSS,
            loss_seed=SEED,
        )
        assert run(2, loss=LOSS, workers=2, world_spec=spec) == faulted_s1
