"""Tests for repro.analysis.textreport."""

import pytest

from repro.analysis import render_full_report


@pytest.fixture(scope="module")
def full_text(small_world, small_report):
    nameserver_provider = {
        target.address: target.provider
        for target in small_world.nameserver_targets
    }
    return render_full_report(
        small_report,
        sandbox_reports=small_world.sandbox_reports,
        nameserver_provider=nameserver_provider,
        world=small_world,
    )


class TestFullReport:
    def test_all_sections_present(self, full_text):
        for section in (
            "Overview (paper §5.1)",
            "Table 1",
            "Figure 2",
            "Figure 3(a)",
            "Figure 3(b)",
            "Figure 3(c)",
            "Figure 3(d)",
            "Malicious TXT records",
            "Case studies",
            "Ground truth",
        ):
            assert section in full_text, section

    def test_paper_comparisons_included(self, full_text):
        assert "25.41%" in full_text  # malicious share reference
        assert "90.95%" in full_text  # email-TXT reference
        assert "paper" in full_text

    def test_case_studies_listed(self, full_text):
        for case in ("Dark.IoT", "Specter", "SPF-masquerade"):
            assert case in full_text

    def test_ground_truth_summary(self, full_text):
        assert "precision=" in full_text

    def test_minimal_invocation(self, small_report):
        text = render_full_report(small_report)
        assert "Table 1" in text
        assert "Case studies" not in text
        assert "Ground truth" not in text

    def test_custom_title(self, small_report):
        text = render_full_report(small_report, title="December sweep")
        assert text.startswith("December sweep")
