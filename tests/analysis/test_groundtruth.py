"""Tests for repro.analysis.groundtruth."""

import pytest

from repro.analysis.groundtruth import (
    GroundTruthScore,
    score_against_ground_truth,
)
from repro.core.records import URCategory


class TestScoreMath:
    def _score(self, **kwargs):
        base = dict(
            true_positives=0,
            false_positives=0,
            under_reported=0,
            stage2_misses=0,
            true_negatives=0,
            missed_entries=[],
        )
        base.update(kwargs)
        return GroundTruthScore(**base)

    def test_precision(self):
        score = self._score(true_positives=8, false_positives=2)
        assert score.precision == 0.8

    def test_recall(self):
        score = self._score(
            true_positives=6, under_reported=3, stage2_misses=1
        )
        assert score.recall == 0.6
        assert score.observable_recall == pytest.approx(6 / 9)

    def test_zero_division_safe(self):
        score = self._score()
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.observable_recall == 0.0

    def test_summary(self):
        score = self._score(true_positives=1)
        assert "precision" in score.summary()


class TestAgainstSmallWorld:
    def test_perfect_precision(self, small_world, small_report):
        """Every malicious verdict corresponds to an attacker record —
        the pipeline raises no false alarms in the calibrated world."""
        score = score_against_ground_truth(small_report, small_world)
        assert score.precision == 1.0
        assert score.false_positives == 0

    def test_under_reporting_matches_paper_story(
        self, small_world, small_report
    ):
        """A substantial share of attacker URs stays unknown — the
        simulation's equivalent of the paper's 'there may be
        under-reporting in our analysis'."""
        score = score_against_ground_truth(small_report, small_world)
        assert score.under_reported > 0
        assert 0.0 < score.recall <= 1.0

    def test_stage2_misses_are_geo_exclusions(
        self, small_world, small_report
    ):
        score = score_against_ground_truth(small_report, small_world)
        for entry in score.missed_entries:
            assert entry.reasons == ("geo-subset",)
            assert entry.category in (
                URCategory.CORRECT,
                URCategory.PROTECTIVE,
            )

    def test_totals_consistent(self, small_world, small_report):
        score = score_against_ground_truth(small_report, small_world)
        total = (
            score.true_positives
            + score.false_positives
            + score.under_reported
            + score.stage2_misses
            + score.true_negatives
        )
        assert total == len(small_report.classified)
