"""Tests for repro.analysis.casestudy over the shared world."""

import pytest

from repro.analysis.casestudy import (
    all_case_studies,
    family_case_study,
    spf_case_study,
)


@pytest.fixture(scope="module")
def nameserver_provider(small_world):
    return {
        target.address: target.provider
        for target in small_world.nameserver_targets
    }


@pytest.fixture(scope="module")
def case_studies(small_world, small_report, nameserver_provider):
    return all_case_studies(
        small_report, small_world.sandbox_reports, nameserver_provider
    )


class TestDarkIot:
    def test_present(self, case_studies):
        assert "Dark.IoT" in case_studies

    def test_three_samples_two_variant_generations(self, case_studies):
        case = case_studies["Dark.IoT"]
        assert case.sample_count == 3
        assert set(case.variants) == {"2021-12-12", "2023-03-04"}

    def test_urs_on_cloudns(self, case_studies):
        case = case_studies["Dark.IoT"]
        assert case.providers == ["ClouDNS"]
        assert "api.gitlab.com" in case.ur_domains

    def test_detected_by_av(self, case_studies):
        assert case_studies["Dark.IoT"].max_vendor_detections > 0

    def test_alerts_raised(self, case_studies):
        assert case_studies["Dark.IoT"].alert_count > 0

    def test_summary_readable(self, case_studies):
        text = case_studies["Dark.IoT"].summary()
        assert "Dark.IoT" in text and "ClouDNS" in text


class TestSpecter:
    def test_three_variants_on_cloudns(self, case_studies):
        case = case_studies["Specter"]
        assert case.sample_count == 3
        assert case.providers == ["ClouDNS"]
        assert set(case.ur_domains) >= {"ibm.com"}

    def test_undetected_by_all_vendors(self, case_studies):
        # "They have not been flagged yet as malicious by 74 mainstream
        # security vendors."
        case = case_studies["Specter"]
        assert case.max_vendor_detections == 0
        assert "undetected" in case.summary()


class TestSpfMasquerade:
    def test_present(self, case_studies):
        assert "SPF-masquerade" in case_studies

    def test_eleven_nameservers_two_providers(self, case_studies):
        case = case_studies["SPF-masquerade"]
        assert case.nameserver_count == 11
        assert case.provider_count == 2
        assert case.providers == ["CSC", "Namecheap"]

    def test_three_ips_same_slash24(self, case_studies):
        case = case_studies["SPF-masquerade"]
        assert len(case.spf_ips) == 3
        assert case.all_in_same_slash24

    def test_six_samples_with_one_undetected(self, case_studies):
        case = case_studies["SPF-masquerade"]
        assert case.sample_count == 6
        assert case.undetected_samples == 1
        assert case.trojan_labeled_samples == 5

    def test_high_risk_alerts(self, case_studies):
        case = case_studies["SPF-masquerade"]
        assert case.alert_count > 0
        assert 0 < case.high_risk_alerts <= case.alert_count


class TestMissingData:
    def test_unknown_family_returns_none(self, small_world, nameserver_provider):
        assert (
            family_case_study(
                "NoSuchFamily",
                small_world.sandbox_reports,
                nameserver_provider,
            )
            is None
        )

    def test_spf_returns_none_without_records(self, small_world):
        from repro.core.report import MeasurementReport

        empty = MeasurementReport(classified=[], ip_verdicts={})
        assert (
            spf_case_study(empty, small_world.sandbox_reports) is None
        )
