"""Tests for repro.analysis.tables: Table 1 and the Table 2 probe."""

import pytest

from repro.analysis.tables import build_table1, build_table2, probe_provider
from repro.hosting.policy import NsAllocation


class TestTable1:
    def test_rows_match_report_stats(self, small_report):
        table = build_table1(small_report)
        stats = small_report.suspicious_stats()
        assert table.rows["Total"].urs_total == stats["Total"].urs_total
        assert "Table 1" in table.text

    def test_all_three_rows_rendered(self, small_report):
        table = build_table1(small_report)
        for label in ("A", "TXT", "Total"):
            assert label in table.text

    def test_percentages_in_text(self, small_report):
        table = build_table1(small_report)
        assert "%" in table.text


@pytest.fixture(scope="module")
def probes(request):
    """Probe the seven Table-2 providers of a fresh world."""
    from repro.scenario import build_world, small_config

    world = build_world(small_config(seed=55))
    providers = [
        world.providers[provider_name]
        for provider_name in (
            "Alibaba Cloud",
            "Amazon",
            "Baidu Cloud",
            "ClouDNS",
            "Cloudflare",
            "Godaddy",
            "Tencent Cloud",
        )
    ]
    table = build_table2(providers)
    return {result.provider: result for result in table.results}, table


class TestTable2PaperMatrix:
    """The probe must reproduce the paper's Table 2 row by row."""

    def test_ns_allocation_column(self, probes):
        results, _ = probes
        assert results["Alibaba Cloud"].ns_allocation is NsAllocation.GLOBAL_FIXED
        assert results["Amazon"].ns_allocation is NsAllocation.RANDOM
        assert results["Cloudflare"].ns_allocation is NsAllocation.ACCOUNT_FIXED
        assert results["Tencent Cloud"].ns_allocation is NsAllocation.ACCOUNT_FIXED

    def test_all_host_without_verification(self, probes):
        results, _ = probes
        for result in results.values():
            assert result.hosts_without_verification, result.provider

    def test_unregistered_column(self, probes):
        results, _ = probes
        allowed = {
            provider
            for provider, result in results.items()
            if result.allows_unregistered
        }
        assert allowed == {"Amazon", "ClouDNS"}

    def test_subdomain_column(self, probes):
        results, _ = probes
        refused = {
            provider
            for provider, result in results.items()
            if not result.allows_subdomain
        }
        assert refused == {"Baidu Cloud", "Tencent Cloud"}

    def test_sld_and_etld_columns(self, probes):
        results, _ = probes
        for result in results.values():
            assert result.allows_sld, result.provider
            assert result.allows_etld, result.provider

    def test_duplicate_columns(self, probes):
        results, _ = probes
        single = {
            provider
            for provider, result in results.items()
            if result.duplicate_single_user
        }
        cross = {
            provider
            for provider, result in results.items()
            if result.duplicate_cross_user
        }
        assert single == {"Amazon"}
        assert cross == {"Amazon", "Cloudflare", "Tencent Cloud"}

    def test_no_retrieval_column(self, probes):
        results, _ = probes
        no_retrieval = {
            provider
            for provider, result in results.items()
            if result.no_retrieval
        }
        assert no_retrieval == {"Amazon", "ClouDNS", "Godaddy"}

    def test_rendered_table(self, probes):
        _, table = probes
        assert "Table 2" in table.text
        assert "Cloudflare" in table.text

    def test_probe_cleans_up(self, probes):
        # Ethics: every probe zone is removed afterwards.
        from repro.scenario import build_world, small_config

        world = build_world(small_config(seed=56))
        provider = world.providers["Godaddy"]
        zones_before = len(provider.hosted_zones())
        probe_provider(provider)
        assert len(provider.hosted_zones()) == zones_before

    def test_reserved_note_reported(self, probes):
        results, _ = probes
        assert any(
            "prohibited" in note
            for note in results["Cloudflare"].notes
        )
