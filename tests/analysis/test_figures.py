"""Tests for repro.analysis.figures over the shared measurement."""

import pytest

from repro.analysis.figures import (
    PAPER_FIGURE3A,
    PAPER_FIGURE3C,
    compare_to_paper,
    figure2,
    figure3a,
    figure3b,
    figure3c,
    figure3d,
    overview_funnel,
)


class TestFigure2:
    def test_top_providers_by_volume(self, small_report):
        figure = figure2(small_report, top=5)
        totals = [sum(counts.values()) for _, counts in figure.rows]
        assert totals == sorted(totals, reverse=True)
        assert len(figure.rows) <= 5

    def test_cloudflare_among_top_providers(self, small_report):
        # At the small test scale Cloudflare's fleet-wide correct URs put
        # it near the top; full dominance (paper Figure 2) shows at the
        # benchmark scale.
        figure = figure2(small_report, top=5)
        top_names = [provider for provider, _ in figure.rows[:3]]
        assert "Cloudflare" in top_names

    def test_cloudns_is_protective_heavy(self, small_report):
        figure = figure2(small_report, top=5)
        by_name = dict(figure.rows)
        cloudns = by_name.get("ClouDNS")
        assert cloudns is not None
        assert cloudns["protective"] > cloudns["correct"]
        assert cloudns["protective"] > cloudns["malicious"]

    def test_rendered(self, small_report):
        assert "Figure 2" in figure2(small_report).text


class TestFigure3a:
    def test_shares_sum_to_100(self, small_report):
        figure = figure3a(small_report)
        assert sum(figure.series.values()) == pytest.approx(100.0)

    def test_all_three_sources_observed(self, small_report):
        figure = figure3a(small_report)
        for key in ("intel", "ids", "both"):
            assert figure.series[key] > 0, f"no {key}-labeled IPs"


class TestFigure3b:
    def test_low_bucket_dominates(self, small_report):
        figure = figure3b(small_report)
        # The paper: 77.9% of flagged IPs have 1-2 flagging vendors.
        assert figure.series["1-2"] == max(figure.series.values())

    def test_shares_sum_to_100(self, small_report):
        figure = figure3b(small_report)
        assert sum(figure.series.values()) == pytest.approx(100.0)


class TestFigure3c:
    def test_nonempty(self, small_report):
        figure = figure3c(small_report)
        assert figure.series

    def test_shares_sum_to_100(self, small_report):
        figure = figure3c(small_report)
        assert sum(figure.series.values()) == pytest.approx(100.0)

    def test_categories_are_known(self, small_report):
        known = set(PAPER_FIGURE3C) | {"Other"}
        figure = figure3c(small_report)
        assert set(figure.series) <= known


class TestFigure3d:
    def test_trojan_dominates(self, small_report):
        figure = figure3d(small_report)
        assert figure.series
        assert max(figure.series, key=figure.series.get) == "Trojan"

    def test_multilabel_shares_can_exceed_100(self, small_report):
        figure = figure3d(small_report)
        assert sum(figure.series.values()) >= 100.0


class TestOverviewFunnel:
    def test_funnel_shape(self, small_report):
        funnel = overview_funnel(small_report)
        assert funnel["unique_urs"] == (
            funnel["correct"] + funnel["protective"] + funnel["suspicious"]
        )
        assert funnel["malicious"] <= funnel["suspicious"]
        assert funnel["suspicious"] < funnel["unique_urs"]


class TestCompareToPaper:
    def test_renders_both_columns(self):
        text = compare_to_paper({"intel": 30.0}, PAPER_FIGURE3A)
        assert "34.20%" in text
        assert "30.00%" in text
        assert "measured" in text and "paper" in text
