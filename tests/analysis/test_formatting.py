"""Tests for repro.analysis.formatting."""

import pytest

from repro.analysis.formatting import (
    format_count_with_pct,
    format_pct,
    render_bar_chart,
    render_stacked_shares,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ("Name", "Count"),
            [("alpha", 1), ("b", 100)],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "Name" in lines[1] and "Count" in lines[1]
        # All data lines have the same width.
        assert len(lines[3]) == len(lines[4])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(("A", "B"), [("only-one",)])

    def test_empty_rows(self):
        text = render_table(("A", "B"), [])
        assert "A" in text


class TestRenderBarChart:
    def test_bars_scale_to_peak(self):
        text = render_bar_chart({"big": 100.0, "small": 50.0}, width=10)
        lines = text.splitlines()
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar == 10
        assert small_bar == 5

    def test_values_printed(self):
        text = render_bar_chart({"x": 41.67})
        assert "41.67%" in text

    def test_empty_series(self):
        assert "(no data)" in render_bar_chart({})

    def test_zero_value_gets_no_bar(self):
        text = render_bar_chart({"a": 10.0, "b": 0.0})
        assert text.splitlines()[1].count("#") == 0


class TestRenderStacked:
    ORDER = ("correct", "protective", "unknown", "malicious")

    def test_proportions_rendered(self):
        text = render_stacked_shares(
            {"P1": {"correct": 3, "malicious": 1}},
            order=self.ORDER,
            width=40,
        )
        assert "c" * 30 in text
        assert "n=4" in text

    def test_legend_included(self):
        text = render_stacked_shares(
            {"P1": {"correct": 1}}, order=self.ORDER
        )
        assert "c=correct" in text

    def test_empty_rows(self):
        assert "(no data)" in render_stacked_shares({}, order=self.ORDER)

    def test_row_without_urs(self):
        text = render_stacked_shares(
            {"P1": {}}, order=self.ORDER
        )
        assert "(no URs)" in text


class TestScalarFormats:
    def test_format_pct(self):
        assert format_pct(25.414) == "25.41%"
        assert format_pct(25.414, digits=1) == "25.4%"

    def test_format_count_with_pct(self):
        assert format_count_with_pct(401718, 25.41) == "401,718 (25.41%)"
