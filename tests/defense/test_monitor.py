"""Tests for repro.defense: reputation vs direct-resolution defenses."""

import pytest

from repro.defense import (
    DirectResolutionMonitor,
    ReputationDetector,
    score_defense,
    ur_retrieval_flows,
)
from repro.intel.aggregator import ThreatIntelAggregator
from repro.intel.vendor import SecurityVendor
from repro.net.traffic import FlowRecord, Protocol

CLIENT = "192.0.2.10"
ORG_RESOLVER = "10.50.0.1"
PROVIDER_NS = "10.0.0.1"  # a hosting provider's nameserver
PUBLIC_DNS = "8.8.8.8"
EVIL_IP = "6.6.6.6"


def dns_flow(dst, qname="trusted.com", src=CLIENT):
    return FlowRecord(
        timestamp=1.0,
        src=src,
        dst=dst,
        protocol=Protocol.DNS,
        dst_port=53,
        metadata={"qname": qname},
    )


def tcp_flow(dst, src=CLIENT):
    return FlowRecord(
        timestamp=2.0, src=src, dst=dst, protocol=Protocol.TCP, dst_port=443
    )


class TestReputationDetector:
    @pytest.fixture
    def detector(self):
        vendor = SecurityVendor("VT")
        vendor.flag(EVIL_IP)
        return ReputationDetector(
            intel=ThreatIntelAggregator([vendor]),
            domain_blocklist=["evil.example"],
        )

    def test_flags_blocklisted_domain(self, detector):
        detections = detector.inspect([dns_flow(ORG_RESOLVER, "evil.example")])
        assert len(detections) == 1
        assert detections[0].rule == "reputation:domain"

    def test_flags_subdomain_of_blocklisted(self, detector):
        detections = detector.inspect(
            [dns_flow(ORG_RESOLVER, "cdn.evil.example")]
        )
        assert detections

    def test_flags_blocklisted_destination(self, detector):
        detections = detector.inspect([tcp_flow(EVIL_IP)])
        assert detections[0].rule == "reputation:ip"

    def test_ur_retrieval_evades(self, detector):
        """The paper's core claim: the UR lookup uses a reputable domain
        at a reputable provider's nameserver — reputation sees nothing."""
        assert detector.inspect([dns_flow(PROVIDER_NS, "trusted.com")]) == []

    def test_clean_traffic_silent(self, detector):
        assert detector.inspect([tcp_flow("198.51.100.9")]) == []

    def test_works_without_intel(self):
        detector = ReputationDetector(domain_blocklist=["evil.example"])
        assert detector.inspect([tcp_flow(EVIL_IP)]) == []


class TestDirectResolutionMonitor:
    def test_flags_direct_nameserver_queries(self):
        monitor = DirectResolutionMonitor(approved_resolvers={ORG_RESOLVER})
        detections = monitor.inspect(
            [dns_flow(PROVIDER_NS, "trusted.com")]
        )
        assert len(detections) == 1
        assert detections[0].rule == "direct-resolution"
        assert "trusted.com" in detections[0].detail

    def test_approved_resolver_not_flagged(self):
        monitor = DirectResolutionMonitor(approved_resolvers={ORG_RESOLVER})
        assert monitor.inspect([dns_flow(ORG_RESOLVER)]) == []

    def test_allowlist_suppresses_public_dns(self):
        monitor = DirectResolutionMonitor(
            approved_resolvers={ORG_RESOLVER}, allowlist={PUBLIC_DNS}
        )
        assert monitor.inspect([dns_flow(PUBLIC_DNS)]) == []
        # ...but the provider nameserver is still caught.
        assert monitor.inspect([dns_flow(PROVIDER_NS)])

    def test_non_dns_traffic_ignored(self):
        monitor = DirectResolutionMonitor(approved_resolvers={ORG_RESOLVER})
        assert monitor.inspect([tcp_flow(PROVIDER_NS)]) == []

    def test_monitored_client_scope(self):
        monitor = DirectResolutionMonitor(
            approved_resolvers={ORG_RESOLVER},
            monitored_clients={CLIENT},
        )
        outside = dns_flow(PROVIDER_NS, src="203.0.113.99")
        assert monitor.inspect([outside]) == []
        assert monitor.inspect([dns_flow(PROVIDER_NS)])


class TestScoring:
    def test_score_defense_math(self):
        malicious = [dns_flow(PROVIDER_NS), dns_flow(PROVIDER_NS)]
        benign = [dns_flow(PUBLIC_DNS)]
        monitor = DirectResolutionMonitor(approved_resolvers={ORG_RESOLVER})
        detections = monitor.inspect(malicious + benign)
        score = score_defense("strict", detections, malicious, benign)
        assert score.detection_rate == 1.0
        assert score.false_positive_rate == 1.0
        assert "strict" in score.summary()

    def test_empty_sets(self):
        score = score_defense("x", [], [], [])
        assert score.detection_rate == 0.0
        assert score.false_positive_rate == 0.0


class TestEndToEnd:
    def test_ur_retrieval_flows_extracted(self, small_world):
        measured = {
            target.address for target in small_world.nameserver_targets
        }
        flows = ur_retrieval_flows(small_world.sandbox_reports, measured)
        assert flows  # the case-study malware queried provider NSes
        assert all(flow.protocol is Protocol.DNS for flow in flows)
        assert all(flow.dst in measured for flow in flows)

    def test_reputation_misses_ur_retrievals(self, small_world):
        """Quantified §3 claim: reputation-based detection sees none of
        the UR retrieval lookups (reputable domains, reputable servers)."""
        measured = {
            target.address for target in small_world.nameserver_targets
        }
        malicious = ur_retrieval_flows(
            small_world.sandbox_reports, measured
        )
        detector = ReputationDetector(intel=small_world.intel)
        detections = detector.inspect(malicious)
        dns_detections = [
            detection
            for detection in detections
            if detection.rule == "reputation:domain"
        ]
        assert dns_detections == []

    def test_evaluate_defenses_end_to_end(self, small_world):
        from repro.defense import evaluate_defenses

        scores = evaluate_defenses(small_world)
        assert scores["reputation"].detection_rate == 0.0
        assert scores["direct-strict"].detection_rate == 1.0
        assert scores["direct-strict"].false_positive_rate == 1.0
        assert scores["direct-allowlist"].false_positive_rate == 0.0

    def test_synthesized_benign_flows(self, small_world):
        from repro.defense import (
            DEFAULT_RESOLVER_ALLOWLIST,
            synthesize_benign_direct_flows,
        )

        flows = synthesize_benign_direct_flows(
            small_world, per_client=2, clients=3
        )
        assert len(flows) == 6
        assert all(flow.dst in DEFAULT_RESOLVER_ALLOWLIST for flow in flows)
        assert all(flow.protocol is Protocol.DNS for flow in flows)

    def test_direct_monitor_catches_all_retrievals(self, small_world):
        measured = {
            target.address for target in small_world.nameserver_targets
        }
        malicious = ur_retrieval_flows(
            small_world.sandbox_reports, measured
        )
        monitor = DirectResolutionMonitor(
            approved_resolvers=set(small_world.open_resolver_ips)
        )
        detections = monitor.inspect(malicious)
        score = score_defense("strict", detections, malicious, [])
        assert score.detection_rate == 1.0
