"""Scenario scripts: parsing, round-trips, and compilation onto the
simulator's fault hooks."""

import pytest

from repro.resilience.scenario import (
    BUNDLED_SCENARIOS,
    FaultWindow,
    ScenarioError,
    ScenarioScript,
    apply_scenario,
    bundled_scenario_names,
    load_scenario,
)
from repro.scenario import build_world, small_config


@pytest.fixture(scope="module")
def world():
    return build_world(small_config(seed=7))


class TestScriptParsing:
    def test_bundled_scripts_round_trip_through_json(self):
        for script in BUNDLED_SCENARIOS:
            assert ScenarioScript.from_json(script.to_json()) == script

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown fault window"):
            FaultWindow(kind="meteor-strike")

    def test_unknown_script_keys_rejected(self):
        with pytest.raises(ScenarioError, match="unknown script keys"):
            ScenarioScript.from_dict({"name": "x", "surprise": 1})

    def test_unknown_window_keys_rejected(self):
        with pytest.raises(ScenarioError, match="unknown window keys"):
            FaultWindow.from_dict({"kind": "provider-outage", "oops": 1})

    def test_negative_window_rejected(self):
        with pytest.raises(ScenarioError):
            FaultWindow(kind="provider-outage", start=-1.0)

    def test_invalid_json_rejected(self):
        with pytest.raises(ScenarioError, match="invalid scenario JSON"):
            ScenarioScript.from_json("{nope")
        with pytest.raises(ScenarioError, match="must be an object"):
            ScenarioScript.from_json("[1, 2]")


class TestLoadScenario:
    def test_bundled_names_resolve(self):
        for name in bundled_scenario_names():
            assert load_scenario(name).name == name

    def test_unknown_name_lists_the_bundle(self):
        with pytest.raises(ScenarioError, match="tail-latency-storm"):
            load_scenario("no-such-scenario")

    def test_json_path_loads(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(BUNDLED_SCENARIOS[0].to_json())
        assert load_scenario(str(path)) == BUNDLED_SCENARIOS[0]


class TestCompilation:
    def test_unknown_params_rejected_at_compile_time(self, world):
        script = ScenarioScript(
            name="typo",
            windows=(
                FaultWindow(
                    kind="provider-outage", params={"provider_": "x"}
                ),
            ),
        )
        with pytest.raises(ScenarioError, match="unknown params"):
            apply_scenario(script, world)

    def test_unknown_provider_rejected(self, world):
        script = ScenarioScript(
            name="ghost",
            windows=(
                FaultWindow(
                    kind="provider-outage",
                    params={"provider": "Ghost Hosting"},
                ),
            ),
        )
        with pytest.raises(ScenarioError, match="no nameservers"):
            apply_scenario(script, world)

    def test_provider_outage_targets_only_that_provider(self, world):
        world.network.clear_faults()
        script = load_scenario("provider-outage")
        installed = apply_scenario(script, world)
        expected = {
            target.address
            for target in world.nameserver_targets
            if target.provider == "Cloudflare"
        }
        assert installed == len(expected)
        assert set(world.network._fault_windows) == expected
        world.network.clear_faults()

    def test_storm_covers_every_nameserver(self, world):
        world.network.clear_faults()
        installed = apply_scenario(
            load_scenario("tail-latency-storm"), world
        )
        assert installed == len(
            {target.address for target in world.nameserver_targets}
        )
        world.network.clear_faults()

    def test_brownout_targets_open_resolvers(self, world):
        world.network.clear_faults()
        apply_scenario(load_scenario("resolver-brownout"), world)
        assert set(world.network._fault_windows) == set(
            world.open_resolver_ips
        )
        world.network.clear_faults()

    def test_windows_anchor_at_the_current_clock(self, world):
        world.network.clear_faults()
        script = ScenarioScript(
            name="late",
            windows=(
                FaultWindow(
                    kind="resolver-brownout", start=100.0, duration=50.0
                ),
            ),
        )
        apply_scenario(script, world)
        base = world.network.now
        windows = next(iter(world.network._fault_windows.values()))
        (window,) = windows
        assert window.start == base + 100.0
        assert window.duration == 50.0
        world.network.clear_faults()

    def test_vendor_flap_wraps_the_aggregator(self, world):
        class _HunterStub:
            intel = None

        hunter = _HunterStub()
        installed = apply_scenario(
            load_scenario("intel-vendor-flap"), world, hunter
        )
        assert installed == len(world.vendors)
        assert hunter.intel is not None
        assert hunter.intel is not world.intel
