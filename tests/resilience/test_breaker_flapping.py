"""Circuit breaker vs flapping hosts: half-open probes must re-trip,
and the behaviour must be identical in batch and stream execution."""

import json

import pytest

from repro.core import HunterConfig, URHunter
from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import BatchedEngine, EnginePolicy, QueryTask
from repro.engine.breaker import CircuitState
from repro.obs import RunTrace
from repro.scenario import build_world, small_config

from .conftest import NS_LIVE, SCANNER


def _task(qtype=RRType.A):
    return QueryTask(
        server_ip=NS_LIVE,
        qname=name("example.test"),
        qtype=qtype,
        stage="ur",
    )


def _trip_events(trace, server=None):
    events = [
        json.loads(line)
        for line in trace.deterministic_lines()
        if json.loads(line).get("event") == "breaker.trip"
    ]
    if server is not None:
        events = [event for event in events if event["server"] == server]
    return events


class TestHalfOpenRetrip:
    def test_failed_probe_trips_again(self, make_network):
        network = make_network()
        # a flapping host: up for the first second, then down for ages —
        # by the time we query it, it is in its long dead phase
        network.set_server_faults(NS_LIVE, flap_up=1.0, flap_down=1e6)
        network.tick(2.0)
        engine = BatchedEngine(
            network,
            SCANNER,
            EnginePolicy(circuit_failure_threshold=3, retries=2),
        )
        trace = RunTrace()
        engine.trace = trace
        # 3 attempts on one task reach the threshold: first trip
        engine.execute([_task()])
        assert engine.circuit_state(NS_LIVE) is CircuitState.OPEN
        assert len(_trip_events(trace, NS_LIVE)) == 1
        # past the reset interval the breaker half-opens; the probe
        # lands in the same dead phase and must RE-trip, not linger
        network.tick(61.0)
        engine.execute([_task(RRType.TXT)])
        assert engine.circuit_state(NS_LIVE) is CircuitState.OPEN
        assert len(_trip_events(trace, NS_LIVE)) == 2

    def test_probe_in_up_phase_closes_circuit(self, make_network):
        network = make_network()
        # dead phase first, then a recovery window right when the
        # half-open probe fires
        network.set_server_faults(NS_LIVE, flap_up=30.0, flap_down=40.0)
        network.tick(30.0)  # into the dead phase
        engine = BatchedEngine(
            network,
            SCANNER,
            EnginePolicy(circuit_failure_threshold=3, retries=2),
        )
        trace = RunTrace()
        engine.trace = trace
        engine.execute([_task()])
        assert engine.circuit_state(NS_LIVE) is CircuitState.OPEN
        # clock ~46s: the next up phase spans [70, 100); the breaker
        # half-opens after 60s of open time, inside that up window
        network.tick(70.0 - (network.now % 70.0) + 75.0)
        engine.execute([_task(RRType.TXT)])
        assert engine.circuit_state(NS_LIVE) is CircuitState.CLOSED
        assert len(_trip_events(trace, NS_LIVE)) == 1


class TestBatchStreamParity:
    """A flapping nameserver mid-scan: both execution modes must trip
    the same breakers at the same points and stay byte-identical."""

    @pytest.fixture(scope="class")
    def traces(self):
        lines = {}
        for execution in ("batch", "stream"):
            world = build_world(small_config(seed=7))
            flapper = world.nameserver_targets[0].address
            world.network.set_server_faults(
                flapper, flap_up=5.0, flap_down=1e6
            )
            hunter = URHunter.from_world(
                world, HunterConfig(execution=execution)
            )
            trace = RunTrace()
            hunter.attach_trace(trace)
            hunter.run()
            lines[execution] = (flapper, trace.deterministic_lines())
        return lines

    def test_flapping_host_trips_in_both_modes(self, traces):
        for execution, (flapper, lines) in traces.items():
            trips = [
                json.loads(line)
                for line in lines
                if json.loads(line).get("event") == "breaker.trip"
                and json.loads(line).get("server") == flapper
            ]
            assert trips, f"{execution}: no breaker.trip for {flapper}"

    def test_modes_byte_identical_under_flap(self, traces):
        assert traces["batch"][1] == traces["stream"][1]
