"""Hedged retries: unit behaviour plus engine-level fire/win/waste."""

import json

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import (
    BatchedEngine,
    EnginePolicy,
    OutcomeStatus,
    QueryTask,
    SequentialEngine,
)
from repro.net.network import FaultProfile
from repro.obs import RunTrace
from repro.resilience import HedgeController

from .conftest import NS_LIVE, SCANNER


def _task(server_ip, qtype=RRType.A, stage="ur"):
    return QueryTask(
        server_ip=server_ip,
        qname=name("example.test"),
        qtype=qtype,
        stage=stage,
    )


class TestHedgeControllerUnit:
    def test_base_delay_used_before_observations(self):
        hedge = HedgeController(base_delay=0.25, timeout=5.0)
        assert hedge.delay("10.0.0.1") == pytest.approx(0.25)

    def test_delay_tracks_observed_latency(self):
        hedge = HedgeController(base_delay=0.05, timeout=5.0)
        for _ in range(4):
            hedge.observe("10.0.0.1", 0.2)
        # 3x the observed mean, well above the floor
        assert hedge.delay("10.0.0.1") == pytest.approx(0.6)
        # a server never observed still gets the floor
        assert hedge.delay("10.0.0.2") == pytest.approx(0.05)

    def test_delay_capped_below_timeout_fraction(self):
        hedge = HedgeController(base_delay=0.05, timeout=5.0)
        hedge.observe("10.0.0.1", 100.0)
        assert hedge.delay("10.0.0.1") < 2.5

    def test_floor_clamped_below_ceiling(self):
        # a base delay at/above timeout/2 would never hedge usefully;
        # the controller clamps rather than crossing the timeout
        hedge = HedgeController(base_delay=4.0, timeout=5.0)
        assert hedge.delay("10.0.0.1") < 2.5


class _HedgeHarness:
    """One lossy-window server run with hedging attached."""

    def __init__(self, make_network, engine_cls, outage, delay=0.25):
        self.network = make_network()
        if outage > 0:
            # outage: loss window [0, outage) on the live server
            self.network.add_fault_window(
                NS_LIVE, FaultProfile(loss_rate=1.0, duration=outage)
            )
        self.engine = engine_cls(
            self.network,
            SCANNER,
            EnginePolicy(per_server_interval=0.0, retries=2),
        )
        self.engine.hedge = HedgeController(base_delay=delay, timeout=5.0)
        self.trace = RunTrace()
        self.engine.trace = self.trace
        self.outcomes = self.engine.execute([_task(NS_LIVE)])

    def events(self, event_name):
        return [
            json.loads(line)
            for line in self.trace.deterministic_lines()
            if json.loads(line).get("event") == event_name
        ]


ENGINES = (BatchedEngine, SequentialEngine)


class TestEngineHedging:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_hedge_wins_when_outage_is_short(self, make_network, engine_cls):
        # first attempt at t=0 drops; the 0.25s hedge lands after the
        # 0.1s outage window closes — a win, not a 5s timeout park
        harness = _HedgeHarness(make_network, engine_cls, outage=0.1)
        [outcome] = harness.outcomes
        assert outcome.status is OutcomeStatus.ANSWERED
        resilience = harness.engine.resilience
        assert resilience.hedges_fired == 1
        assert resilience.hedges_won == 1
        assert resilience.hedges_wasted == 0
        assert harness.events("hedge.fired")
        assert harness.events("hedge.won")
        # the whole exchange stayed far below one timeout window
        assert harness.network.now < 1.0

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_hedge_is_accounted_as_a_retry(self, make_network, engine_cls):
        harness = _HedgeHarness(make_network, engine_cls, outage=0.1)
        counters = harness.engine.metrics.stage("ur")
        assert counters.queries == 2
        assert counters.responses == 1
        assert counters.timeouts == 1
        assert counters.retries == 1
        # loss ledger closes: queries == responses + timeouts
        assert counters.queries == counters.responses + counters.timeouts

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_hedge_wasted_when_outage_outlasts_it(
        self, make_network, engine_cls
    ):
        # outage covers the hedge too; only the post-timeout retry lands
        harness = _HedgeHarness(make_network, engine_cls, outage=4.0)
        [outcome] = harness.outcomes
        assert outcome.status is OutcomeStatus.ANSWERED
        resilience = harness.engine.resilience
        assert resilience.hedges_fired == 1
        assert resilience.hedges_won == 0
        assert resilience.hedges_wasted == 1
        assert harness.events("hedge.wasted")

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_no_hedge_on_healthy_server(self, make_network, engine_cls):
        harness = _HedgeHarness(make_network, engine_cls, outage=0.0)
        assert harness.engine.resilience.hedges_fired == 0
        assert not harness.engine.resilience.active

    def test_both_engines_hedge_identically(self, make_network):
        counters = []
        for engine_cls in ENGINES:
            harness = _HedgeHarness(make_network, engine_cls, outage=0.1)
            resilience = harness.engine.resilience
            counters.append(
                (
                    resilience.hedges_fired,
                    resilience.hedges_won,
                    resilience.hedges_wasted,
                    harness.engine.metrics.stage("ur").queries,
                )
            )
        assert counters[0] == counters[1]
