"""The robustness contracts, exercised through the invariant checker.

CI's chaos-matrix job replays every bundled scenario; the tier-1 suite
keeps one representative scenario (plus the clean baseline, which is
the PR's headline acceptance criterion) so a regression is caught
before CI.
"""

import pytest

from repro.resilience.invariants import (
    InvariantViolation,
    check_clean_baseline,
    check_scenario,
)
from repro.resilience.scenario import FaultWindow, ScenarioScript, load_scenario


class TestCleanBaseline:
    def test_resilience_layer_is_a_noop_on_healthy_runs(self):
        # byte-identical reports with the resilience knobs on vs off
        check_clean_baseline(seed=7)


class TestScenarioReplay:
    def test_regional_partition_passes_the_matrix(self):
        verdict = check_scenario(load_scenario("regional-partition"))
        assert verdict.identical
        assert set(verdict.statuses) <= {"clean", "degraded"}
        assert all(count == 0 for count in verdict.unaccounted)
        assert len(verdict.configs) == 3
        summary = verdict.summary()
        assert "identical=yes" in summary

    def test_impossible_contract_is_reported(self):
        # a scenario that sheds *everything* still has to account for
        # it — prove the checker would catch a world with no
        # nameservers at all (compilation failure surfaces as a
        # violation, not a silent pass)
        script = ScenarioScript(
            name="ghost-provider",
            windows=(
                FaultWindow(
                    kind="provider-outage",
                    params={"provider": "Ghost Hosting"},
                ),
            ),
        )
        with pytest.raises(InvariantViolation, match="ghost-provider"):
            check_scenario(script)
