"""Shared fixtures: a tiny network both engines can be pointed at."""

import pytest

from repro.dns.server import AuthoritativeServer
from repro.dns.zone import zone_from_records
from repro.net.network import SimulatedInternet

SCANNER = "203.0.113.53"
NS_LIVE = "10.0.0.1"
NS_LIVE2 = "10.0.0.2"
NS_DEAD = "10.0.0.66"


@pytest.fixture
def make_network():
    """Factory for identical fresh networks (determinism comparisons)."""

    def build() -> SimulatedInternet:
        net = SimulatedInternet()
        for address, host in ((NS_LIVE, "ns1"), (NS_LIVE2, "ns2")):
            server = AuthoritativeServer(f"{host}.host.test")
            server.load_zone(
                zone_from_records(
                    "example.test",
                    [
                        ("example.test", "A", "10.1.0.1"),
                        ("example.test", "TXT", '"hello"'),
                    ],
                )
            )
            net.register_dns_host(address, server)
        net.register_dns_host(
            NS_DEAD, AuthoritativeServer("ns3.host.test")
        )
        net.set_online(NS_DEAD, False)
        net.register_stub(SCANNER)
        return net

    return build


@pytest.fixture
def network(make_network):
    """Two live authoritative servers and one dead one."""
    return make_network()
