"""Deadline budgets: unit behaviour plus engine-level load shedding."""

import json

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import (
    BatchedEngine,
    EnginePolicy,
    OutcomeStatus,
    QueryTask,
    SequentialEngine,
)
from repro.obs import RunTrace
from repro.resilience import DeadlineBudget

from .conftest import NS_LIVE, SCANNER


def _task(server_ip, qtype=RRType.A, stage="ur"):
    return QueryTask(
        server_ip=server_ip,
        qname=name("example.test"),
        qtype=qtype,
        stage=stage,
    )


class TestDeadlineBudgetUnit:
    def test_zero_budgets_never_exhaust(self):
        budget = DeadlineBudget()
        budget.begin(0.0)
        assert not budget.run_exhausted(1e12)
        assert budget.check(1e12, "ur") is None

    def test_begin_is_idempotent(self):
        budget = DeadlineBudget(run_deadline=10.0)
        budget.begin(100.0)
        budget.begin(500.0)  # second begin must not move the anchor
        assert budget.run_exhausted(110.0)

    def test_run_deadline_measured_from_begin(self):
        budget = DeadlineBudget(run_deadline=10.0)
        budget.begin(100.0)
        assert not budget.run_exhausted(109.9)
        assert budget.run_exhausted(110.0)
        assert budget.check(110.0, "ur") == "deadline-run"

    def test_stage_deadline_measured_from_phase_entry(self):
        budget = DeadlineBudget(stage_deadline=5.0)
        budget.begin(0.0)
        budget.enter_phase("correct", 0.0)
        assert budget.check(4.0, "correct") is None
        assert budget.check(5.0, "correct") == "deadline-stage"
        # a new phase gets a fresh allowance
        budget.enter_phase("ur", 6.0)
        assert budget.check(10.0, "ur") is None
        assert budget.check(11.0, "ur") == "deadline-stage"

    def test_run_reason_wins_over_stage(self):
        budget = DeadlineBudget(run_deadline=5.0, stage_deadline=1.0)
        budget.begin(0.0)
        budget.enter_phase("ur", 0.0)
        assert budget.check(6.0, "ur") == "deadline-run"

    def test_announce_once_per_phase_and_reason(self):
        budget = DeadlineBudget(run_deadline=1.0)
        assert budget.announce("ur", "deadline-run")
        assert not budget.announce("ur", "deadline-run")
        assert budget.announce("correct", "deadline-run")

    def test_negative_deadlines_rejected(self):
        with pytest.raises(ValueError):
            DeadlineBudget(run_deadline=-1.0)
        with pytest.raises(ValueError):
            DeadlineBudget(stage_deadline=-1.0)


class TestEngineShedding:
    """Once the budget is spent, queued tasks shed deterministically and
    land in the loss ledger — never silently dropped."""

    def _run(self, network, engine_cls, **budget_knobs):
        engine = engine_cls(
            network, SCANNER, EnginePolicy(per_server_interval=0.0)
        )
        engine.budget = DeadlineBudget(**budget_knobs)
        trace = RunTrace()
        engine.trace = trace
        outcomes = engine.execute([_task(NS_LIVE) for _ in range(5)])
        return engine, outcomes, trace

    @pytest.mark.parametrize(
        "engine_cls", (BatchedEngine, SequentialEngine)
    )
    def test_exhausted_budget_sheds_the_tail(self, make_network, engine_cls):
        # the first answer charges ~20ms of latency, far past a 1ms
        # budget — everything still queued on the lane must shed
        engine, outcomes, trace = self._run(
            make_network(), engine_cls, run_deadline=0.001
        )
        statuses = [outcome.status for outcome in outcomes]
        assert statuses[0] is OutcomeStatus.ANSWERED
        assert all(s is OutcomeStatus.SHED for s in statuses[1:])
        counters = engine.metrics.stage("ur")
        # shed tasks were never sent: they must not count as queries
        assert counters.queries == 1
        assert counters.responses == 1
        assert counters.shed == 4
        assert engine.resilience.shed == {"shed:deadline-run": 4}
        assert engine.resilience.active

    @pytest.mark.parametrize(
        "engine_cls", (BatchedEngine, SequentialEngine)
    )
    def test_budget_exhausted_announced_once(self, make_network, engine_cls):
        _, _, trace = self._run(
            make_network(), engine_cls, run_deadline=0.001
        )
        events = [
            json.loads(line)
            for line in trace.deterministic_lines()
            if '"budget.exhausted"' in line
        ]
        assert len(events) == 1
        assert events[0]["reason"] == "deadline-run"
        assert events[0]["phase"] == "ur"

    @pytest.mark.parametrize(
        "engine_cls", (BatchedEngine, SequentialEngine)
    )
    def test_generous_budget_sheds_nothing(self, make_network, engine_cls):
        engine, outcomes, _ = self._run(
            make_network(), engine_cls, run_deadline=1e6
        )
        assert all(o.status is OutcomeStatus.ANSWERED for o in outcomes)
        assert engine.metrics.stage("ur").shed == 0
        assert not engine.resilience.active

    def test_both_engines_shed_identically(self, make_network):
        results = []
        for engine_cls in (BatchedEngine, SequentialEngine):
            engine, outcomes, _ = self._run(
                make_network(), engine_cls, run_deadline=0.001
            )
            results.append(
                [(o.status, o.task.server_ip) for o in outcomes]
            )
        assert results[0] == results[1]
