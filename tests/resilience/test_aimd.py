"""AIMD adaptive send credit: unit behaviour plus engine composition."""

import json

import pytest

from repro.dns.name import name
from repro.dns.rdata import RRType
from repro.engine import BatchedEngine, EnginePolicy, QueryTask
from repro.net.network import FaultProfile
from repro.obs import RunTrace
from repro.resilience import AimdController

from .conftest import NS_LIVE, NS_LIVE2, SCANNER


def _task(server_ip, qtype=RRType.A, stage="ur"):
    return QueryTask(
        server_ip=server_ip,
        qname=name("example.test"),
        qtype=qtype,
        stage=stage,
    )


class TestAimdControllerUnit:
    def test_full_credit_means_no_delay(self):
        aimd = AimdController(timeout=5.0)
        assert aimd.ready_at("10.0.0.1", None, 7.0) == 7.0
        aimd.note_send("10.0.0.1", 7.0)
        # still full credit: back-to-back sends allowed
        assert aimd.ready_at("10.0.0.1", None, 7.0) == 7.0

    def test_multiplicative_cut_spaces_sends(self):
        aimd = AimdController(timeout=5.0)
        aimd.note_send("10.0.0.1", 0.0)
        assert aimd.on_failure("10.0.0.1", None)
        # credit 0.5 -> extra interval (1 - 0.5) * 5.0 * 0.5 = 1.25s
        assert aimd.ready_at("10.0.0.1", None, 0.0) == pytest.approx(1.25)

    def test_additive_recovery_restores_full_credit(self):
        aimd = AimdController(timeout=5.0)
        aimd.on_failure("10.0.0.1", None)
        for _ in range(2):
            aimd.on_success("10.0.0.1", None)
        aimd.note_send("10.0.0.1", 0.0)
        assert aimd.ready_at("10.0.0.1", None, 0.0) == 0.0

    def test_credit_never_falls_below_floor(self):
        aimd = AimdController(timeout=5.0)
        for _ in range(50):
            aimd.on_failure("10.0.0.1", None)
        aimd.note_send("10.0.0.1", 0.0)
        # floored credit: the wait is bounded, not unbounded backoff
        wait = aimd.ready_at("10.0.0.1", None, 0.0)
        assert wait <= (1.0 - 1.0 / 16.0) * 5.0 * 0.5 + 1e-9

    def test_provider_cut_slows_sibling_servers(self):
        aimd = AimdController(timeout=5.0)
        aimd.on_failure("10.0.0.1", "Cloudflare")
        # a different server under the same provider inherits the
        # provider-level cut
        aimd.note_send("10.0.0.2", 0.0)
        assert aimd.ready_at("10.0.0.2", "Cloudflare", 0.0) > 0.0
        # but an unrelated provider does not
        aimd.note_send("10.0.0.3", 0.0)
        assert aimd.ready_at("10.0.0.3", "Amazon", 0.0) == 0.0

    def test_repeat_failure_reporting(self):
        aimd = AimdController(timeout=5.0)
        assert aimd.on_failure("10.0.0.1", None)
        # already at the floor after enough cuts: no new cut reported
        for _ in range(10):
            aimd.on_failure("10.0.0.1", None)
        assert not aimd.on_failure("10.0.0.1", None)


class TestEngineComposition:
    def _engine(self, network, interval=0.0):
        engine = BatchedEngine(
            network,
            SCANNER,
            EnginePolicy(per_server_interval=interval, retries=1),
        )
        engine.aimd = AimdController(timeout=5.0)
        engine.trace = RunTrace()
        return engine

    def test_clean_run_is_untouched(self, make_network):
        network = make_network()
        engine = self._engine(network)
        engine.execute([_task(NS_LIVE) for _ in range(6)])
        assert engine.resilience.aimd_cuts == 0
        assert engine.resilience.aimd_wait == 0.0
        assert not engine.resilience.active

    def test_timeouts_cut_and_delay(self, make_network):
        network = make_network()
        network.add_fault_window(
            NS_LIVE, FaultProfile(loss_rate=1.0, duration=12.0)
        )
        engine = self._engine(network)
        engine.execute([_task(NS_LIVE) for _ in range(4)])
        resilience = engine.resilience
        assert resilience.aimd_cuts > 0
        assert resilience.aimd_wait > 0.0
        events = [
            json.loads(line)
            for line in engine.trace.deterministic_lines()
            if json.loads(line).get("event") == "aimd.cut"
        ]
        assert len(events) == resilience.aimd_cuts
        assert all(event["server"] == NS_LIVE for event in events)

    def test_aimd_composes_with_pacing(self, make_network):
        # pacing alone vs pacing+AIMD on a faulted server: AIMD may only
        # add delay on top of the token bucket, never bypass it
        def run(with_aimd):
            network = make_network()
            network.add_fault_window(
                NS_LIVE, FaultProfile(loss_rate=1.0, duration=12.0)
            )
            engine = BatchedEngine(
                network,
                SCANNER,
                EnginePolicy(per_server_interval=2.0, retries=1),
            )
            if with_aimd:
                engine.aimd = AimdController(timeout=5.0)
            engine.execute([_task(NS_LIVE) for _ in range(4)])
            return network.now, engine.metrics.stage("ur").rate_limit_wait

        paced_clock, paced_wait = run(with_aimd=False)
        aimd_clock, aimd_wait = run(with_aimd=True)
        assert aimd_clock >= paced_clock
        # the token-bucket share of the wait is unchanged; AIMD's extra
        # wait is accounted separately, not folded into pacing
        assert aimd_wait == pytest.approx(paced_wait)

    def test_unrelated_server_keeps_full_speed(self, make_network):
        network = make_network()
        network.add_fault_window(
            NS_LIVE, FaultProfile(loss_rate=1.0, duration=12.0)
        )
        engine = self._engine(network)
        engine.execute(
            [_task(NS_LIVE), _task(NS_LIVE2), _task(NS_LIVE2)]
        )
        # cuts happened on the faulted server only; the healthy one
        # answered everything without AIMD delay
        counters = engine.metrics.stage("ur")
        assert counters.responses >= 2
