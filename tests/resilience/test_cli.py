"""CLI hardening: non-positive knobs exit 2; chaos plumbing works."""

import json

import pytest

from repro import cli


def _run(argv):
    return cli.main(argv)


class TestKnobValidation:
    """Explicit non-positive values are usage errors (exit 2), never
    silently clamped or passed through."""

    @pytest.mark.parametrize(
        "flags",
        [
            ["--channel-depth", "0"],
            ["--channel-depth", "-4"],
            ["--stage2-workers", "0"],
            ["--stage2-workers", "-1"],
            ["--checkpoint-every", "0"],
            ["--checkpoint-every", "-5"],
            ["--run-deadline", "0"],
            ["--run-deadline", "-10"],
            ["--stage-deadline", "0"],
            ["--hedge-delay", "0"],
            ["--hedge-delay", "-0.5"],
        ],
    )
    def test_non_positive_knob_exits_2(self, flags, capsys):
        assert _run(["--scale", "small", *flags, "run"]) == cli.EXIT_USAGE
        err = capsys.readouterr().err
        assert "error:" in err

    def test_hedge_delay_at_or_above_timeout_exits_2(self, capsys):
        code = _run(
            [
                "--scale", "small",
                "--timeout", "5", "--hedge-delay", "5",
                "run",
            ]
        )
        assert code == cli.EXIT_USAGE
        assert "hedge_delay" in capsys.readouterr().err

    def test_unknown_chaos_script_exits_2(self, capsys):
        code = _run(
            ["--scale", "small", "--chaos-script", "no-such", "chaos"]
        )
        assert code == cli.EXIT_USAGE
        assert "no-such" in capsys.readouterr().err

    def test_run_with_unknown_chaos_script_exits_2(self, capsys):
        code = _run(
            ["--scale", "small", "--chaos-script", "no-such", "run"]
        )
        assert code == cli.EXIT_USAGE


class TestChaosRun:
    def test_chaos_script_run_sheds_nothing_but_degrades_gracefully(
        self, tmp_path, capsys
    ):
        # a full CLI run under the storm scenario: exits 0 (degradation
        # is not failure), resilience metrics land in the artifacts
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = _run(
            [
                "--scale", "small", "--seed", "7",
                "--chaos-script", "tail-latency-storm",
                "--hedge-delay", "0.25", "--aimd",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
                "-q", "run",
            ]
        )
        assert code == cli.EXIT_OK
        out = capsys.readouterr().out
        assert "resilience metrics:" in out
        document = json.loads(metrics.read_text())
        resilience = document["deterministic"]["resilience"]
        assert resilience["hedges_fired"] > 0
        # every shed/timeout is accounted: the trace's run.end closes
        run_end = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if '"run.end"' in line
        ][-1]
        assert run_end["unaccounted"] == 0

    def test_run_deadline_sheds_and_reports(self, capsys):
        code = _run(
            [
                "--scale", "small", "--seed", "7",
                "--run-deadline", "50",
                "-q", "run",
            ]
        )
        assert code == cli.EXIT_OK
        out = capsys.readouterr().out
        # shed queries surface in the scan metrics block
        assert "shed:" in out
