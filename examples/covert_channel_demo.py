#!/usr/bin/env python3
"""The UR covert channel, step by step (the paper's Figure 1 threat model).

Builds a minimal world by hand — no scenario generator — and walks the
five numbered steps of the threat model:

  ① the attacker hosts undelegated records for ``trusted.com`` at a
    reputable provider (no ownership check!);
  ② the "malware" (a few lines below) is configured with the domain and
    the provider's nameservers only;
  ③ the malware resolves trusted.com *directly at the provider's
    nameservers*, retrieving the attacker's record;
  ④ the DNS traffic looks benign: a top domain, a reputable nameserver;
  ⑤ the victim connects to the C2 address it received.

It then shows why the channel is covert: the normal recursive resolution
of trusted.com still returns the legitimate address.
"""

from repro.dns import Message, RecursiveResolver, RRType
from repro.hosting import DnsRoot, make_cloudflare, make_godaddy
from repro.net import PrefixPlanner, SimulatedInternet


def main() -> None:
    network = SimulatedInternet()
    root = DnsRoot(network)
    planner = PrefixPlanner()

    # The victim domain's legitimate hosting: GoDaddy.
    godaddy = make_godaddy(network, planner.pool("godaddy"))
    root.connect_provider(godaddy)
    owner = godaddy.create_account()
    legit = godaddy.host_zone(owner, "trusted.com", is_registered=True)
    godaddy.add_record(legit, "trusted.com", "A", "198.51.100.10")
    root.register("trusted.com", "the-real-owner")
    root.delegate("trusted.com", godaddy.nameserver_set_for_delegation(legit))

    # ① The attacker hosts trusted.com at Cloudflare — which they do not
    #   own — and points it at their C2 server.
    cloudflare = make_cloudflare(network, planner.pool("cloudflare"))
    root.connect_provider(cloudflare)
    attacker_account = cloudflare.create_account()
    ur_zone = cloudflare.host_zone(
        attacker_account, "trusted.com", is_registered=True
    )
    c2_address = "203.0.113.66"
    cloudflare.add_record(ur_zone, "trusted.com", "A", c2_address)
    cloudflare.add_record(
        ur_zone, "trusted.com", "TXT", '"cmd=retrieve-stage2;port=4444"'
    )
    ur_nameserver = ur_zone.nameserver_addresses()[0]
    print(
        f"① attacker hosted trusted.com at Cloudflare "
        f"({ur_zone.nameserver_names()[0]}) -> {c2_address}"
    )

    # ② The malware ships with (domain, nameserver) only — no IP, no
    #   attacker domain, nothing blockable without collateral damage.
    print(f"② malware config: resolve trusted.com @ {ur_nameserver}")

    # ③ Retrieval: a direct query to the provider's nameserver.
    victim_ip = "192.0.2.50"
    network.register_stub(victim_ip)
    response = network.query_dns(
        victim_ip,
        ur_nameserver,
        Message.make_query("trusted.com", RRType.A, recursion_desired=False),
    )
    retrieved = response.answers[0].rdata.address
    txt_response = network.query_dns(
        victim_ip,
        ur_nameserver,
        Message.make_query("trusted.com", RRType.TXT, recursion_desired=False),
    )
    command = txt_response.answers[0].rdata.value
    print(f"③ UR answer: trusted.com A {retrieved}, TXT {command!r}")

    # ④ Covertness: ordinary resolution is untouched.
    resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)
    legit_answer = resolver.lookup_a("trusted.com")
    print(
        f"④ normal recursive resolution still returns {legit_answer} — "
        "the hijack is invisible to everyone except clients who query "
        "the attacker's assigned nameservers"
    )
    assert legit_answer == ["198.51.100.10"]
    assert retrieved == c2_address

    # ⑤ The victim acts on the retrieved information.
    class C2:
        def handle_tcp_connect(self, src, port, payload, network):
            return b"stage2-payload"

    network.register_tcp_host(c2_address, C2())
    reply = network.connect_tcp(victim_ip, retrieved, 4444, b"hello-c2")
    print(f"⑤ victim connected to C2 {retrieved}:4444 -> {reply!r}")

    print(
        "\ncaptured flows (what a network monitor would see):"
    )
    for flow in network.capture.flows[-4:]:
        print("  " + flow.describe())


if __name__ == "__main__":
    main()
