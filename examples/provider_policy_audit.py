#!/usr/bin/env python3
"""Audit hosting-provider policies (the paper's Appendix C / Table 2).

Actively probes each provider with throwaway accounts: tries popular
SLDs, eTLDs (gov.cn-style public suffixes), subdomains, unregistered
domains, duplicate hosting, and owner retrieval — then prints the policy
matrix, before and after the paper's disclosure-driven mitigations.
"""

from repro.analysis import build_table2
from repro.hosting import TABLE2_PROVIDERS, build_headline_providers
from repro.net import PrefixPlanner, SimulatedInternet


def probe(post_disclosure: bool) -> str:
    network = SimulatedInternet()
    planner = PrefixPlanner()
    providers = build_headline_providers(
        network, planner, post_disclosure=post_disclosure
    )
    table = build_table2(
        [providers[provider_name] for provider_name in TABLE2_PROVIDERS]
    )
    return table.text


def main() -> None:
    print("Probing the seven providers of Table 2 (pre-disclosure) ...\n")
    print(probe(post_disclosure=False))

    print(
        "\n\nAfter disclosure (§6): Tencent verifies delegation, Alibaba "
        "requires a TXT challenge,\nCloudflare expanded its blacklist of "
        "hosted popular domains.\n"
    )
    print(probe(post_disclosure=True))

    print(
        "\nReading the post-disclosure matrix: Tencent Cloud now shows "
        "'no' under\n'No verification' — hosting a domain there no longer "
        "yields a served UR\nunless the TLD delegation actually points at "
        "the assigned nameservers."
    )


if __name__ == "__main__":
    main()
