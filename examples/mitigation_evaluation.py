#!/usr/bin/env python3
"""Evaluate the paper's §6 mitigations by re-measuring a mitigated world.

Runs URHunter twice on identically-seeded scenarios — once with
pre-disclosure provider policies, once with the post-disclosure fixes
(DNSPod delegation verification, Alibaba TXT challenge, Cloudflare's
expanded blacklist) — and compares how much attacker-usable UR surface
disappears on the fixed providers.
"""

from repro.core import URHunter
from repro.scenario import ScenarioConfig, build_world

FIXED_PROVIDERS = ("Tencent Cloud", "Alibaba Cloud", "Cloudflare")


def measure(post_disclosure: bool):
    config = ScenarioConfig(seed=7, post_disclosure=post_disclosure)
    world = build_world(config)
    report = URHunter.from_world(world).run(validate=False)
    return world, report


def suspicious_by_provider(report):
    counts = {}
    for entry in report.suspicious:
        counts[entry.record.provider] = (
            counts.get(entry.record.provider, 0) + 1
        )
    return counts


def main() -> None:
    print("measuring pre-disclosure world ...")
    _, before_report = measure(post_disclosure=False)
    print("measuring post-disclosure world ...")
    _, after_report = measure(post_disclosure=True)

    before = suspicious_by_provider(before_report)
    after = suspicious_by_provider(after_report)

    print("\nsuspicious URs per provider, before -> after disclosure:")
    for provider_name in sorted(set(before) | set(after)):
        old = before.get(provider_name, 0)
        new = after.get(provider_name, 0)
        marker = ""
        if provider_name in FIXED_PROVIDERS:
            marker = "   <- applied a mitigation"
        print(f"  {provider_name:18} {old:6d} -> {new:6d}{marker}")

    tencent_after = after.get("Tencent Cloud", 0)
    print(
        "\nTencent Cloud fully adopted mitigation option (1) — verifying "
        "TLD delegation —\nso its nameservers no longer serve attacker "
        f"zones at all (suspicious URs after: {tencent_after})."
    )
    print(
        "Cloudflare and Alibaba remain partially exploitable, as the "
        "paper notes:\nCloudflare only expanded its domain blacklist, and "
        "Alibaba's TXT challenge\ngates serving but attacker-favoured "
        "renowned domains merely became fewer."
    )


if __name__ == "__main__":
    main()
