#!/usr/bin/env python3
"""Compare URs with the related attacks the paper positions against (§3).

Builds one small delegation tree and runs three techniques against it:

  1. dangling-record takeover — needs stale state, hijacks normal
     resolution (loud);
  2. domain shadowing — needs an account compromise, visible under the
     legitimate delegation (loud);
  3. the undelegated record — needs nothing but a free account, and
     normal resolution never changes (silent).
"""

from repro.dns import Message, RecursiveResolver, RRType
from repro.hosting import DnsRoot, make_cloudns, make_godaddy
from repro.net import PrefixPlanner, SimulatedInternet
from repro.scenario import (
    attempt_dangling_takeover,
    create_dangling_delegation,
    resolves_to,
    shadow_domain,
)

ATTACKER_IP = "203.0.113.66"
LEGIT_IP = "198.51.100.10"


def main() -> None:
    network = SimulatedInternet()
    root = DnsRoot(network)
    planner = PrefixPlanner()
    godaddy = make_godaddy(network, planner.pool("gd"))
    cloudns = make_cloudns(network, planner.pool("cd"))
    for provider in (godaddy, cloudns):
        root.connect_provider(provider)
    resolver = RecursiveResolver("9.9.9.9", network, root.root_addresses)

    print("=== 1. dangling-record takeover (needs stale state) ===")
    create_dangling_delegation(root, godaddy, "abandoned.com")
    takeover = attempt_dangling_takeover(
        root, godaddy, "abandoned.com", ATTACKER_IP
    )
    print(
        f"  takeover succeeded={takeover.succeeded}, hijacks normal "
        f"resolution={takeover.hijacks_normal_resolution}"
    )
    print(
        "  recursive lookup of abandoned.com -> "
        f"{resolver.lookup_a('abandoned.com')}  <- VISIBLE hijack"
    )

    print("\n=== 2. domain shadowing (needs account compromise) ===")
    owner = godaddy.create_account()
    victim = godaddy.host_zone(owner, "victim.net", is_registered=True)
    godaddy.add_record(victim, "victim.net", "A", LEGIT_IP)
    root.register("victim.net", "owner")
    root.delegate("victim.net", godaddy.nameserver_set_for_delegation(victim))
    shadowed = shadow_domain(victim, "cdn-x9k2", ATTACKER_IP)
    print(f"  spawned shadow {shadowed.shadow}")
    print(
        "  recursive lookup of the shadow -> "
        f"{resolver.lookup_a(str(shadowed.shadow))}  <- VISIBLE under "
        "the legitimate zone"
    )

    print("\n=== 3. undelegated record (needs nothing) ===")
    ur_zone = cloudns.host_zone(
        cloudns.create_account(), "victim.net", is_registered=True
    )
    cloudns.add_record(ur_zone, "victim.net", "A", ATTACKER_IP)
    normal = resolver.lookup_a("victim.net")
    print(f"  normal resolution of victim.net -> {normal}  <- UNCHANGED")
    assert not resolves_to(resolver, "victim.net", ATTACKER_IP)
    response = network.query_dns(
        "10.9.9.9",
        ur_zone.nameserver_addresses()[0],
        Message.make_query("victim.net", RRType.A),
    )
    print(
        "  direct query at the ClouDNS nameserver -> "
        f"{response.answers[0].rdata.address}  <- the covert channel"
    )
    print(
        "\nconclusion: the UR needs no stale delegation and no compromise, "
        "and leaves normal\nresolution untouched — the paper's §3 argument, "
        "executed."
    )


if __name__ == "__main__":
    main()
