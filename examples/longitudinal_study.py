#!/usr/bin/env python3
"""Longitudinal UR measurement with attacker churn.

The paper measured twice (April and December 2022) and observed change
over time — Dark.IoT abandoning EmerDNS, some case-study URs becoming
unresolvable while the SPF masquerade stayed up.  This example runs
three monthly URHunter snapshots against an evolving world:

  round 1: the baseline world;
  round 2: a new campaign appears, the Dark.IoT pastebin zone is taken
           down, and a vendor flags a previously unknown C2;
  round 3: a provider rolls out the delegation-verification mitigation.
"""

from repro.core import LongitudinalStudy, URHunter
from repro.hosting import VerificationMode
from repro.scenario import ScenarioConfig, build_world


def main() -> None:
    world = build_world(ScenarioConfig(seed=7))
    cloudns = world.providers["ClouDNS"]

    def mutate(world_obj, round_index):
        attacker = world_obj.attacker
        if round_index == 1:
            # Attacker churn: a new wave plus a takedown.
            campaign = attacker.new_campaign("late-wave", ["ClouDNS"])
            (c2,) = attacker.stand_up_c2(1)
            for candidate in world_obj.domain_targets:
                if attacker.plant_a_record(
                    campaign, cloudns, str(candidate.domain), c2
                ):
                    print(
                        f"  [churn] new campaign targets "
                        f"{candidate.domain} -> {c2}"
                    )
                    break
            darkiot = world_obj.case_studies["Dark.IoT"]
            for hosted in list(darkiot.hosted_zones):
                if str(hosted.domain) == "raw.pastebin.com":
                    cloudns.delete_zone(hosted)
                    print("  [churn] raw.pastebin.com UR taken down")
            # Late intel: a vendor catches up with one quiet C2.
            for address in sorted(attacker.all_c2_ips()):
                if not world_obj.intel.is_flagged(address):
                    world_obj.vendors[0].flag(address, ["Trojan"])
                    print(f"  [churn] vendor flags {address}")
                    break
        elif round_index == 2:
            # Mitigation roll-out: Tencent-style delegation verification.
            from dataclasses import replace

            godaddy = world_obj.providers["Godaddy"]
            godaddy.policy = replace(
                godaddy.policy,
                verification=VerificationMode.REQUIRE_DELEGATION,
            )
            for hosted in godaddy.hosted_zones():
                godaddy.recheck_verification(hosted)
            print(
                "  [mitigation] Godaddy now requires delegation; "
                "unverified zones unloaded"
            )

    study = LongitudinalStudy(world, mutate=mutate)
    print("running three monthly snapshots ...")
    snapshots = study.run(rounds=3, interval=30 * 24 * 3600.0)

    for snapshot in snapshots:
        counts = snapshot.report.category_counts()
        print(
            f"\nsnapshot {snapshot.index}: "
            f"{len(snapshot.report.classified)} URs "
            f"(malicious={counts['malicious']}, "
            f"unknown={counts['unknown']})"
        )

    print("\nchanges between snapshots:")
    for index, diff in enumerate(study.diffs()):
        print(f"  round {index} -> {index + 1}: {diff.summary()}")
        upgraded = diff.became_malicious()
        if upgraded:
            print(
                f"    {len(upgraded)} persisted URs became malicious "
                "after late intel flags"
            )


if __name__ == "__main__":
    main()
