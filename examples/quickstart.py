#!/usr/bin/env python3
"""Quickstart: build a simulated internet, run URHunter, print the results.

This reproduces the paper's end-to-end flow in one script:

1. :func:`repro.scenario.build_world` assembles providers, legitimate
   hosting, attackers (including the §5.3 case-study campaigns), threat
   intel, and a malware sandbox;
2. :class:`repro.core.URHunter` runs the three-stage measurement;
3. the analysis layer prints the §5.1 funnel, Table 1, and Figure 2.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.analysis import build_table1, figure2, overview_funnel
from repro.core import URHunter
from repro.scenario import ScenarioConfig, build_world


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(f"building simulated internet (seed={seed}) ...")
    world = build_world(ScenarioConfig(seed=seed))
    print(
        f"  {len(world.providers)} hosting providers, "
        f"{len(world.nameserver_targets)} target nameservers, "
        f"{len(world.domain_targets)} target domains, "
        f"{len(world.samples)} sandboxed malware samples"
    )

    print("\nrunning URHunter (collect -> exclude -> analyze) ...")
    hunter = URHunter.from_world(world)
    report = hunter.run()

    print("\n=== Overview (paper §5.1) ===")
    funnel = overview_funnel(report)
    for key, value in funnel.items():
        print(f"  {key:12} {value:,}")
    print(report.summary())

    print("\n" + build_table1(report).text)
    print("\n" + figure2(report).text)

    print(
        "\nvalidation: feeding delegated records through the exclusion "
        f"stage gives a false-negative rate of "
        f"{report.false_negative_rate:.4f} (paper: 0.0)"
    )


if __name__ == "__main__":
    main()
